#include "arch/baselines.hpp"

namespace aesip::arch {

const std::vector<LiteratureDesign>& table3_baselines() {
  static const std::vector<LiteratureDesign> rows = [] {
    std::vector<LiteratureDesign> v;

    // [13] Mroczkowski, "Implementation of the block cipher Rijndael using
    // Altera FPGA", Flex10KA.  A 32-bit iterative implementation; the
    // scanned Table 3 cells are illegible, so only the configuration is
    // modeled.
    v.push_back(LiteratureDesign{
        "[13] Mroczkowski", "Flex10KA", std::nullopt, std::nullopt, std::nullopt, std::nullopt,
        std::nullopt,
        DatapathConfig{"all-32-bit iterative", 32, 32, false, true, true}, 40.0});

    // [14] Zigiotto & d'Amore, low-cost Acex1K implementation: 1965 LCs and
    // 61.2 Mbps combined are legible in the paper text.
    v.push_back(LiteratureDesign{
        "[14] Zigiotto/d'Amore", "Acex1K", std::nullopt, 1965, std::nullopt, std::nullopt, 61.2,
        DatapathConfig{"8-bit low-cost", 8, 32, false, true, true}, 20.0});

    // [1] Panato, Boeira, Reis, "An IP of an Advanced Encryption Standard
    // for Altera Devices" — the authors' own high-performance Apex20K-1
    // design (fully parallel 128-bit round, stored round keys).
    v.push_back(LiteratureDesign{
        "[1] Panato et al. (high-perf)", "Apex20K-1", std::nullopt, std::nullopt, std::nullopt,
        std::nullopt, std::nullopt,
        DatapathConfig{"full-128-bit pipelined", 128, 128, true, true, true}, 11.0});

    // [15] Altera Hammercores Rijndael processor, Apex20KE; the memory
    // figure 57344 bits for the decrypt configuration survives in the text.
    v.push_back(LiteratureDesign{
        "[15] Altera Hammercores", "Apex20KE", 57344, std::nullopt, std::nullopt, std::nullopt,
        std::nullopt,
        DatapathConfig{"full-128-bit, T-box style", 128, 128, true, true, true}, 12.0});
    return v;
  }();
  return rows;
}

}  // namespace aesip::arch
