#include "arch/alt_ip.hpp"

#include "aes/sbox.hpp"
#include "aes/state.hpp"
#include "aes/transforms.hpp"
#include "gf/gf256.hpp"

namespace aesip::arch {

namespace {

hdl::Word128 shift_rows128(const hdl::Word128& w) {
  aes::State s(4, w.b);
  aes::shift_rows(s);
  hdl::Word128 out;
  s.store(out.b);
  return out;
}

hdl::Word128 mix_columns128(const hdl::Word128& w) {
  aes::State s(4, w.b);
  aes::mix_columns(s);
  hdl::Word128 out;
  s.store(out.b);
  return out;
}

hdl::Word128 sub_bytes128(const hdl::Word128& w) {
  hdl::Word128 out;
  for (std::size_t i = 0; i < 16; ++i) out.b[i] = aes::kSBox[w.b[i]];
  return out;
}

std::uint32_t rot_word(std::uint32_t w) noexcept { return (w >> 8) | (w << 24); }

}  // namespace

// ===== All32Ip =================================================================

All32Ip::All32Ip(hdl::Simulator& sim)
    : hdl::Module("all32_ip"),
      setup(sim, "setup", 1),
      wr_data(sim, "wr_data", 1),
      wr_key(sim, "wr_key", 1),
      encdec(sim, "encdec", 1, true),
      data_ok(sim, "data_ok", 1),
      din(sim, "din", 128),
      dout(sim, "dout", 128) {
  bytesub_ = std::make_unique<core::SubWord32Unit>(sim, "a32.bytesub", aes::kSBox);
  kstran_ = std::make_unique<core::SubWord32Unit>(sim, "a32.kstran", aes::kSBox);
  sim.add_module(*this);
}

void All32Ip::evaluate() {
  bytesub_->addr.write(state_.column(sub_));
  kstran_->addr.write(rot_word(round_key_.column(3)));
}

void All32Ip::start_block() {
  data_pending_ = false;
  state_ = data_in_reg_ ^ key_reg_;  // initial AddRoundKey folds into load
  round_key_ = key_reg_;
  round_ = 1;
  sub_ = 0;
  phase_ = Phase::kSub;
}

void All32Ip::tick() {
  data_ok.write(false);
  if (setup.read()) {
    phase_ = Phase::kIdle;
    data_pending_ = false;
    key_valid_ = false;
    return;
  }
  if (wr_key.read()) {
    key_reg_ = din.read();
    key_valid_ = true;
    data_pending_ = false;
    phase_ = Phase::kIdle;
    return;
  }
  if (wr_data.read()) {
    data_in_reg_ = din.read();
    data_pending_ = true;
  }

  switch (phase_) {
    case Phase::kIdle:
      if (data_pending_ && key_valid_) start_block();
      break;

    case Phase::kSub: {
      // ByteSub column pass + on-the-fly key staging (hides here exactly as
      // in the mixed design — the schedule is not the limiter at 32 bits).
      state_.set_column(sub_, bytesub_->data.read());
      if (sub_ == 0) {
        next_key_.set_column(0, round_key_.column(0) ^ kstran_->data.read() ^
                                    gf::rcon(static_cast<unsigned>(round_)));
      } else {
        next_key_.set_column(sub_, next_key_.column(sub_ - 1) ^ round_key_.column(sub_));
      }
      if (sub_ < 3) ++sub_;
      else {
        sub_ = 0;
        phase_ = Phase::kMix;
      }
      break;
    }

    case Phase::kMix: {
      // One MixColumn pass into the ping-pong register; ShiftRow is read
      // wiring.  The final round copies the shifted column unmixed.
      const hdl::Word128 shifted = shift_rows128(state_);
      const hdl::Word128 mixed = round_ < 10 ? mix_columns128(shifted) : shifted;
      tmp_.set_column(sub_, mixed.column(sub_));
      if (sub_ < 3) ++sub_;
      else {
        sub_ = 0;
        phase_ = Phase::kAdd;
      }
      break;
    }

    case Phase::kAdd: {
      const std::uint32_t col = tmp_.column(sub_) ^ next_key_.column(sub_);
      state_.set_column(sub_, col);
      if (sub_ < 3) {
        ++sub_;
      } else if (round_ < 10) {
        round_key_ = next_key_;
        ++round_;
        sub_ = 0;
        phase_ = Phase::kSub;
      } else {
        hdl::Word128 result = state_;
        result.set_column(3, col);
        dout.write(result);
        data_ok.write(true);
        if (data_pending_ && key_valid_) start_block();
        else phase_ = Phase::kIdle;
      }
      break;
    }
  }
}

// ===== Full128Ip ================================================================

Full128Ip::Full128Ip(hdl::Simulator& sim)
    : hdl::Module("full128_ip"),
      setup(sim, "setup", 1),
      wr_data(sim, "wr_data", 1),
      wr_key(sim, "wr_key", 1),
      encdec(sim, "encdec", 1, true),
      data_ok(sim, "data_ok", 1),
      din(sim, "din", 128),
      dout(sim, "dout", 128) {
  kstran_ = std::make_unique<core::SubWord32Unit>(sim, "f128.kstran", aes::kSBox);
  sim.add_module(*this);
}

void Full128Ip::evaluate() {
  const int src = phase_ == Phase::kExpand && round_ >= 1 ? round_ - 1 : 0;
  kstran_->addr.write(rot_word(round_keys_[static_cast<std::size_t>(src)].column(3)));
}

void Full128Ip::start_block() {
  data_pending_ = false;
  state_ = data_in_reg_ ^ round_keys_[0];
  round_ = 1;
  phase_ = Phase::kRound;
}

void Full128Ip::tick() {
  data_ok.write(false);
  if (setup.read()) {
    phase_ = Phase::kIdle;
    data_pending_ = false;
    key_valid_ = false;
    return;
  }
  if (wr_key.read()) {
    key_reg_ = din.read();
    round_keys_[0] = key_reg_;
    key_valid_ = false;
    data_pending_ = false;
    round_ = 1;
    phase_ = Phase::kExpand;
    return;
  }
  if (wr_data.read()) {
    data_in_reg_ = din.read();
    data_pending_ = true;
  }

  switch (phase_) {
    case Phase::kIdle:
      if (data_pending_ && key_valid_) start_block();
      break;

    case Phase::kExpand: {
      // One full round key per cycle into the key RAM — the storage the
      // paper's on-the-fly schedule exists to avoid.
      const hdl::Word128& prev = round_keys_[static_cast<std::size_t>(round_ - 1)];
      hdl::Word128 next;
      next.set_column(0, prev.column(0) ^ kstran_->data.read() ^
                             gf::rcon(static_cast<unsigned>(round_)));
      for (int c = 1; c < 4; ++c)
        next.set_column(c, next.column(c - 1) ^ prev.column(c));
      round_keys_[static_cast<std::size_t>(round_)] = next;
      if (round_ < 10) {
        ++round_;
      } else {
        key_valid_ = true;
        phase_ = Phase::kIdle;
      }
      break;
    }

    case Phase::kRound: {
      // The fused round: 16 S-boxes + ShiftRow + MixColumn + AddKey in one
      // (long) cycle.
      const hdl::Word128 sub = sub_bytes128(state_);
      const hdl::Word128 sr = shift_rows128(sub);
      const hdl::Word128 pre = round_ < 10 ? mix_columns128(sr) : sr;
      const hdl::Word128 next = pre ^ round_keys_[static_cast<std::size_t>(round_)];
      if (round_ < 10) {
        state_ = next;
        ++round_;
      } else {
        dout.write(next);
        data_ok.write(true);
        if (data_pending_ && key_valid_) start_block();
        else phase_ = Phase::kIdle;
      }
      break;
    }
  }
}

}  // namespace aesip::arch
