// Cycle-accurate models of the architectures the paper compares against.
//
// All32Ip — every function at 32 bits (the organization the paper's
// Section 4 improves on): 4 ByteSub passes, 4 MixColumn passes into a
// ping-pong register (ShiftRow folds into the MixColumn read wiring), and
// 4 AddKey passes = the 12-cycle round the paper quotes; 120 cycles per
// block.  Same 8-S-box budget as the mixed design — which is exactly the
// paper's point: the 128-bit linear section costs no memory, only cycles.
//
// Full128Ip — the high-performance organization of the authors' companion
// design [1] and the Hammercores processor [15]: a fused 128-bit round
// (16 data S-boxes) with round keys precomputed into storage at key-load
// time, one round per cycle, 10 cycles per block.  Trades 2.5x the S-box
// memory plus 1408 bits of key RAM for 5x the paper IP's throughput — the
// other end of the area/performance axis of Table 3.
//
// Both expose the same Table 1 bus protocol as the main IP (encrypt-only),
// so the same BusDriver measures all three.
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "core/sbox_unit.hpp"
#include "hdl/module.hpp"
#include "hdl/signal.hpp"
#include "hdl/simulator.hpp"
#include "hdl/word128.hpp"

namespace aesip::arch {

/// All-32-bit organization: 12 cycles per round, 120 per block.
class All32Ip final : public hdl::Module {
 public:
  static constexpr int kCyclesPerRound = 12;
  static constexpr int kCyclesPerBlock = 120;

  explicit All32Ip(hdl::Simulator& sim);

  hdl::Signal<bool> setup, wr_data, wr_key, encdec, data_ok;
  hdl::Signal<hdl::Word128> din, dout;

  bool key_ready() const noexcept { return key_valid_; }
  bool data_pending() const noexcept { return data_pending_; }
  bool busy() const noexcept { return phase_ != Phase::kIdle; }
  int sbox_count() const noexcept { return 8; }  // 4 ByteSub + 4 KStran

  void evaluate() override;
  void tick() override;

 private:
  enum class Phase : std::uint8_t { kIdle, kSub, kMix, kAdd };

  void start_block();

  std::unique_ptr<core::SubWord32Unit> bytesub_;
  std::unique_ptr<core::SubWord32Unit> kstran_;

  hdl::Word128 data_in_reg_, key_reg_;
  bool data_pending_ = false, key_valid_ = false;
  hdl::Word128 state_, tmp_, round_key_, next_key_;
  Phase phase_ = Phase::kIdle;
  int round_ = 0;
  int sub_ = 0;
};

/// Fused 128-bit round with stored round keys: 10 cycles per block.
class Full128Ip final : public hdl::Module {
 public:
  static constexpr int kCyclesPerBlock = 10;
  static constexpr int kKeyExpandCycles = 10;

  explicit Full128Ip(hdl::Simulator& sim);

  hdl::Signal<bool> setup, wr_data, wr_key, encdec, data_ok;
  hdl::Signal<hdl::Word128> din, dout;

  bool key_ready() const noexcept { return key_valid_; }
  bool data_pending() const noexcept { return data_pending_; }
  bool busy() const noexcept { return phase_ != Phase::kIdle; }
  int sbox_count() const noexcept { return 20; }  // 16 data + 4 key expansion
  /// Bits of round-key storage the on-the-fly design avoids (11 x 128).
  static constexpr int kKeyRamBits = 11 * 128;

  void evaluate() override;
  void tick() override;

 private:
  enum class Phase : std::uint8_t { kIdle, kExpand, kRound };

  void start_block();

  std::unique_ptr<core::SubWord32Unit> kstran_;

  hdl::Word128 data_in_reg_, key_reg_;
  bool data_pending_ = false, key_valid_ = false;
  hdl::Word128 state_;
  std::array<hdl::Word128, 11> round_keys_;  // the stored schedule
  Phase phase_ = Phase::kIdle;
  int round_ = 0;
};

}  // namespace aesip::arch
