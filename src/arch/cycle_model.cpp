#include "arch/cycle_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace aesip::arch {

DatapathConfig paper_mixed() { return {"mixed-32/128 (paper)", 32, 128, false, false, false}; }
DatapathConfig all32() { return {"all-32-bit", 32, 32, false, false, false}; }
DatapathConfig full128() { return {"full-128-bit", 128, 128, true, false, false}; }
DatapathConfig serial8() { return {"byte-serial (8-bit)", 8, 32, false, false, false}; }
DatapathConfig serial16() { return {"16-bit", 16, 32, false, false, false}; }

int cycles_per_round(const DatapathConfig& c) {
  if (c.bytesub_bits <= 0 || 128 % c.bytesub_bits != 0)
    throw std::invalid_argument("cycle_model: ByteSub width must divide 128");
  if (c.linear_bits != 32 && c.linear_bits != 128)
    throw std::invalid_argument("cycle_model: linear width must be 32 or 128");
  if (c.fused_round) return 1;
  const int bytesub = 128 / c.bytesub_bits;
  // At 128 bits ShiftRow+MixColumn+AddKey fuse into one cycle; at 32 bits
  // MixColumn and AddKey each take 4 passes (ShiftRow stays free wiring) —
  // the paper's 12-cycle all-32-bit round.
  const int linear = c.linear_bits == 128 ? 1 : 2 * (128 / c.linear_bits);
  return bytesub + linear;
}

int cycles_per_block(const DatapathConfig& c) { return 10 * effective_cycles_per_round(c); }

int key_schedule_cycles_per_round() { return 4; }

int effective_cycles_per_round(const DatapathConfig& c) {
  if (c.stored_keys) return cycles_per_round(c);
  return std::max(cycles_per_round(c), key_schedule_cycles_per_round());
}

int sbox_count(const DatapathConfig& c) {
  const int data = c.bytesub_bits / 8;
  const int kstran = 4;
  return c.decrypt_too ? 2 * (data + kstran) : data + kstran;
}

int rom_bits(const DatapathConfig& c) { return sbox_count(c) * 2048; }

double throughput_mbps(const DatapathConfig& c, double clock_ns) {
  const double latency_ns = clock_ns * cycles_per_block(c);
  return latency_ns > 0.0 ? 128.0 / latency_ns * 1000.0 : 0.0;
}

}  // namespace aesip::arch
