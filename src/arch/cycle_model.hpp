// Analytical architecture model: cycles, S-boxes and resource trends as a
// function of datapath organization.
//
// Captures Section 4's quantitative argument — moving ByteSub to 32 bits
// while keeping ShiftRow/MixColumn/AddKey at 128 bits cuts a round from 12
// cycles to 5 — and Section 6's observations (larger datapaths are limited
// by the key schedule; smaller ones pay many cycles without a compensating
// clock gain).  Used by the ablation bench and the design-space example.
#pragma once

#include <string>

namespace aesip::arch {

/// A datapath organization of the AES-128 round.
struct DatapathConfig {
  std::string name;
  int bytesub_bits;    ///< ByteSub slice width (8..128, multiple of 8)
  int linear_bits;     ///< ShiftRow/MixColumn/AddKey width (32 or 128)
  bool fused_round;    ///< true: whole round (incl. ByteSub) in one cycle
  bool decrypt_too;    ///< device implements decryption as well
  bool stored_keys;    ///< round keys precomputed into a RAM (no on-the-fly
                       ///< stall, but extra storage — the alternative the
                       ///< paper's on-the-fly choice avoids)
};

/// The paper's architecture: ByteSub32 + 128-bit linear part.
DatapathConfig paper_mixed();
/// The all-32-bit organization the paper compares against (12 cycles/round).
DatapathConfig all32();
/// Fully parallel 128-bit round (the high-performance reference [1]).
DatapathConfig full128();
/// Byte-serial organization (smart-card style, the paper's "8-bit" remark).
DatapathConfig serial8();
/// 16-bit organization (the other small variant the paper mentions).
DatapathConfig serial16();

/// Cycles for one of the ten rounds.
int cycles_per_round(const DatapathConfig& c);
/// Cycles for a full 128-bit block (10 rounds; initial AddKey folds into
/// the load in every organization, as in the paper's IP).
int cycles_per_block(const DatapathConfig& c);

/// Data-path S-boxes (ByteSub width / 8, doubled when decryption needs the
/// inverse table) plus the 4 forward S-boxes of the KStran unit (doubled on
/// a combined device, matching the paper's 32768-bit configuration).
int sbox_count(const DatapathConfig& c);
/// Embedded-ROM bits when S-boxes live in memory (2048 per S-box).
int rom_bits(const DatapathConfig& c);

/// Cycles the on-the-fly key schedule needs per round key (4 at 32-bit);
/// the round stalls when this exceeds cycles_per_round — the paper's
/// "a 128 could be limited by the key schedule" remark.
int key_schedule_cycles_per_round();

/// Effective cycles per round including any key-schedule stall.
int effective_cycles_per_round(const DatapathConfig& c);

/// Throughput in Mbps at a given clock period for full-rate streaming.
double throughput_mbps(const DatapathConfig& c, double clock_ns);

}  // namespace aesip::arch
