#include "engine/engine.hpp"

#include <algorithm>

#include "core/ip_synth.hpp"

namespace aesip::engine {

const char* kind_name(EngineKind k) noexcept {
  switch (k) {
    case EngineKind::kSoftware: return "sw";
    case EngineKind::kBehavioral: return "behavioral";
    case EngineKind::kNetlist: return "netlist";
  }
  return "?";
}

std::optional<EngineKind> kind_from_name(std::string_view name) noexcept {
  if (name == "sw" || name == "software" || name == "soft") return EngineKind::kSoftware;
  if (name == "behavioral" || name == "behav" || name == "ip") return EngineKind::kBehavioral;
  if (name == "netlist" || name == "gate") return EngineKind::kNetlist;
  return std::nullopt;
}

// --- CipherEngine batch path -------------------------------------------------

std::size_t CipherEngine::check_batch_spans(std::span<const std::uint8_t> in,
                                            std::span<std::uint8_t> out) {
  if (in.size() != out.size())
    throw std::invalid_argument("CipherEngine: batch in/out sizes differ");
  if (in.size() % 16 != 0)
    throw std::invalid_argument("CipherEngine: batch must be whole 16-byte blocks");
  return in.size() / 16;
}

void CipherEngine::process_batch(std::span<const std::uint8_t> in, std::span<std::uint8_t> out,
                                 bool encrypt) {
  const std::size_t n = check_batch_spans(in, out);
  for (std::size_t i = 0; i < n; ++i) {
    const auto r = process_block(in.subspan(16 * i, 16), encrypt);
    std::copy(r.begin(), r.end(), out.begin() + static_cast<std::ptrdiff_t>(16 * i));
  }
  ++batch_stats_.calls;
  batch_stats_.blocks += n;
  batch_stats_.passes += n;  // loop engines dispatch one block per pass
}

// --- SoftwareEngine ----------------------------------------------------------

std::uint64_t SoftwareEngine::load_key(std::span<const std::uint8_t> key) {
  if (key.size() != 16 && key.size() != 24 && key.size() != 32)
    throw std::invalid_argument("SoftwareEngine: key must be 16, 24 or 32 bytes");
  aes_.emplace(aes::Rijndael::for_key(key));
  rounds_ = aes_->geometry().nr;
  ttable_.reset();  // rebuilt lazily on the next batch
  std::copy(key.begin(), key.end(), resident_key_.begin());
  resident_key_len_ = key.size();
  ++counters_.key_writes;
  return 0;
}

void SoftwareEngine::process_batch(std::span<const std::uint8_t> in, std::span<std::uint8_t> out,
                                   bool encrypt) {
  const std::size_t n = check_batch_spans(in, out);
  if (!aes_) throw std::logic_error("SoftwareEngine: no key loaded");
  if (!ttable_) ttable_.emplace(std::span(resident_key_).first(resident_key_len_));
  const bool dec = mode_ == core::IpMode::kDecrypt || (mode_ == core::IpMode::kBoth && !encrypt);
  for (std::size_t i = 0; i < n; ++i) {
    const auto src = in.subspan(16 * i, 16);
    const auto dst = out.subspan(16 * i, 16);
    if (encrypt)
      ttable_->encrypt_block(src, dst);
    else
      ttable_->decrypt_block(src, dst);
  }
  counters_.data_writes += n;
  counters_.rounds_done += static_cast<std::uint64_t>(rounds_) * n;
  (dec ? counters_.blocks_dec : counters_.blocks_enc) += n;
  ++batch_stats_.calls;
  batch_stats_.blocks += n;
  batch_stats_.passes += n;  // one block per table walk: still a loop engine
}

bool SoftwareEngine::key_resident(std::span<const std::uint8_t> key) const {
  return aes_.has_value() && key.size() == resident_key_len_ &&
         std::equal(key.begin(), key.end(), resident_key_.begin());
}

std::array<std::uint8_t, 16> SoftwareEngine::do_process(std::span<const std::uint8_t> block,
                                                        bool encrypt) {
  if (!aes_) throw std::logic_error("SoftwareEngine: no key loaded");
  std::array<std::uint8_t, 16> out{};
  if (encrypt)
    aes_->encrypt_block(block, out);
  else
    aes_->decrypt_block(block, out);
  const bool dec = mode_ == core::IpMode::kDecrypt || (mode_ == core::IpMode::kBoth && !encrypt);
  ++counters_.data_writes;
  counters_.rounds_done += static_cast<std::uint64_t>(rounds_);
  ++(dec ? counters_.blocks_dec : counters_.blocks_enc);
  return out;
}

// --- BehavioralEngine --------------------------------------------------------

BehavioralEngine::BehavioralEngine(const arch::VariantSpec& spec, core::IpMode mode)
    : spec_(spec), mode_(mode) {
  if (spec_.is_iterative()) {
    // The MixColumn style is a gate-level distinction only; the paper's
    // RijndaelIp is the behavioral twin of both iterative netlists.
    ip_ = std::make_unique<core::RijndaelIp>(sim_, mode, spec.key_bits);
    bus_ = std::make_unique<core::BusDriver>(sim_, *ip_);
    bus_->reset();
  } else {
    var_ip_ = std::make_unique<arch::VariantIp>(sim_, spec, mode);
    var_bus_ = std::make_unique<core::GenericBusDriver<arch::VariantIp>>(sim_, *var_ip_);
    var_bus_->reset();
  }
}

// --- NetlistEngine -----------------------------------------------------------

std::shared_ptr<const netlist::Netlist> make_ip_netlist(core::IpMode mode, int key_bits) {
  return std::make_shared<const netlist::Netlist>(core::synthesize_ip(
      mode, netlist::SboxStyle::kRom, netlist::MixColStyle::kXtime, key_bits));
}

std::shared_ptr<const netlist::Netlist> make_variant_netlist(const arch::VariantSpec& spec,
                                                             core::IpMode mode) {
  return std::make_shared<const netlist::Netlist>(arch::synthesize_variant(spec, mode));
}

NetlistEngine::NetlistEngine(std::shared_ptr<const netlist::Netlist> nl, core::IpMode mode,
                             const netlist::BatchConfig& cfg)
    : NetlistEngine(std::move(nl), arch::VariantSpec{}, mode, cfg) {}

NetlistEngine::NetlistEngine(std::shared_ptr<const netlist::Netlist> nl,
                             const arch::VariantSpec& spec, core::IpMode mode,
                             const netlist::BatchConfig& cfg)
    : nl_(std::move(nl)), spec_(spec), mode_(mode), drv_(*nl_, cfg) {
  // Mirror BehavioralEngine's construction-time reset() pulse: one setup
  // edge plus one idle edge, so cycle counts line up from cycle 0.
  drv_.reset();
  ++counters_.setup_resets;
  ++counters_.idle_cycles;
}

std::uint64_t NetlistEngine::load_key(std::span<const std::uint8_t> key) {
  if (static_cast<int>(key.size()) * 8 != spec_.key_bits)
    throw std::invalid_argument("NetlistEngine: key must be " +
                                std::to_string(spec_.key_bits / 8) + " bytes for " + spec_.name());
  const std::uint64_t setup =
      static_cast<std::uint64_t>(spec_.key_setup_cycles(mode_));
  drv_.load_key(key, static_cast<int>(setup));
  std::copy(key.begin(), key.end(), resident_key_.begin());
  resident_key_len_ = key.size();
  ++counters_.key_writes;
  counters_.key_setup_cycles += setup;
  return setup;
}

bool NetlistEngine::key_resident(std::span<const std::uint8_t> key) const {
  return resident_key_len_ != 0 && key.size() == resident_key_len_ &&
         std::equal(key.begin(), key.end(), resident_key_.begin());
}

void NetlistEngine::run_pass(std::span<const std::uint8_t> in, std::span<std::uint8_t> out,
                             std::size_t n, bool encrypt) {
  const auto r = drv_.process_batch(in, out, n, encrypt);
  if (!r) throw std::runtime_error("NetlistEngine: data_ok never rose (gate-level hang)");
  last_latency_ = static_cast<std::uint64_t>(r->cycles);
  // The gate FSM walks the same phases the behavioral model counts; derive
  // the identical attribution from the protocol events, once per lane — a
  // pass over n lanes is n blocks of device work (cycles() agrees: the
  // driver weights each pass clock by the active lane count).
  // Iterative blocks spend 4 ByteSub32 slices + 1 MixColumn cycle per
  // round; the full-width variants do the whole round in the one wide
  // cycle counted under mix_cycles (matching VariantIp's attribution).
  const std::uint64_t bytesub_per_round =
      spec_.is_iterative() ? core::RijndaelIp::kCyclesPerRound - 1 : 0;
  const std::uint64_t rounds = static_cast<std::uint64_t>(spec_.nr());
  const bool dec = mode_ == core::IpMode::kDecrypt || (mode_ == core::IpMode::kBoth && !encrypt);
  counters_.data_writes += n;
  counters_.idle_cycles += n;  // the load edge executes in kIdle (block start)
  counters_.bytesub_cycles += rounds * bytesub_per_round * n;
  counters_.mix_cycles += rounds * n;
  counters_.rounds_done += rounds * n;
  (dec ? counters_.blocks_dec : counters_.blocks_enc) += n;
}

const char* NetlistEngine::batch_backend() const noexcept {
  return netlist::backend_name(drv_.evaluator().backend());
}

std::size_t NetlistEngine::fault_sites() const noexcept {
  return drv_.evaluator().dff_count();
}

bool NetlistEngine::inject_fault(std::size_t site) {
  if (site >= drv_.evaluator().dff_count()) return false;
  drv_.evaluator().flip_dff(site);
  drv_.evaluator().settle();
  return true;
}

std::array<std::uint8_t, 16> NetlistEngine::do_process(std::span<const std::uint8_t> block,
                                                       bool encrypt) {
  std::array<std::uint8_t, 16> out{};
  run_pass(block, out, 1, encrypt);  // a scalar block is a 1-lane batch
  return out;
}

void NetlistEngine::process_batch(std::span<const std::uint8_t> in, std::span<std::uint8_t> out,
                                  bool encrypt) {
  const std::size_t n = check_batch_spans(in, out);
  const std::size_t lanes = batch_lanes();
  for (std::size_t off = 0; off < n; off += lanes) {
    const std::size_t take = std::min(lanes, n - off);
    run_pass(in.subspan(16 * off, 16 * take), out.subspan(16 * off, 16 * take), take, encrypt);
    ++batch_stats_.passes;
  }
  ++batch_stats_.calls;
  batch_stats_.blocks += n;
}

// --- factory -----------------------------------------------------------------

std::unique_ptr<CipherEngine> make_engine(EngineKind kind, core::IpMode mode) {
  switch (kind) {
    case EngineKind::kSoftware: return std::make_unique<SoftwareEngine>(mode);
    case EngineKind::kBehavioral: return std::make_unique<BehavioralEngine>(mode);
    case EngineKind::kNetlist: return std::make_unique<NetlistEngine>(mode);
  }
  throw std::invalid_argument("make_engine: unknown engine kind");
}

std::unique_ptr<CipherEngine> make_engine(EngineKind kind, const arch::VariantSpec& spec,
                                          core::IpMode mode) {
  switch (kind) {
    case EngineKind::kSoftware: return std::make_unique<SoftwareEngine>(mode);
    case EngineKind::kBehavioral: return std::make_unique<BehavioralEngine>(spec, mode);
    case EngineKind::kNetlist: return std::make_unique<NetlistEngine>(spec, mode);
  }
  throw std::invalid_argument("make_engine: unknown engine kind");
}

}  // namespace aesip::engine
