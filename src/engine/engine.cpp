#include "engine/engine.hpp"

#include <algorithm>

#include "core/ip_synth.hpp"

namespace aesip::engine {

const char* kind_name(EngineKind k) noexcept {
  switch (k) {
    case EngineKind::kSoftware: return "sw";
    case EngineKind::kBehavioral: return "behavioral";
    case EngineKind::kNetlist: return "netlist";
  }
  return "?";
}

std::optional<EngineKind> kind_from_name(std::string_view name) noexcept {
  if (name == "sw" || name == "software" || name == "soft") return EngineKind::kSoftware;
  if (name == "behavioral" || name == "behav" || name == "ip") return EngineKind::kBehavioral;
  if (name == "netlist" || name == "gate") return EngineKind::kNetlist;
  return std::nullopt;
}

// --- SoftwareEngine ----------------------------------------------------------

std::uint64_t SoftwareEngine::load_key(std::span<const std::uint8_t> key) {
  if (key.size() != 16) throw std::invalid_argument("SoftwareEngine: key must be 16 bytes");
  aes_.emplace(key);
  std::copy(key.begin(), key.end(), resident_key_.begin());
  ++counters_.key_writes;
  return 0;
}

bool SoftwareEngine::key_resident(std::span<const std::uint8_t> key) const {
  return aes_.has_value() && key.size() == 16 &&
         std::equal(key.begin(), key.end(), resident_key_.begin());
}

std::array<std::uint8_t, 16> SoftwareEngine::do_process(std::span<const std::uint8_t> block,
                                                        bool encrypt) {
  if (!aes_) throw std::logic_error("SoftwareEngine: no key loaded");
  std::array<std::uint8_t, 16> out{};
  if (encrypt)
    aes_->encrypt_block(block, out);
  else
    aes_->decrypt_block(block, out);
  const bool dec = mode_ == core::IpMode::kDecrypt || (mode_ == core::IpMode::kBoth && !encrypt);
  ++counters_.data_writes;
  counters_.rounds_done += core::RijndaelIp::kRounds;
  ++(dec ? counters_.blocks_dec : counters_.blocks_enc);
  return out;
}

// --- NetlistEngine -----------------------------------------------------------

std::shared_ptr<const netlist::Netlist> make_ip_netlist(core::IpMode mode) {
  return std::make_shared<const netlist::Netlist>(core::synthesize_ip(mode, /*sbox_as_rom=*/true));
}

NetlistEngine::NetlistEngine(std::shared_ptr<const netlist::Netlist> nl, core::IpMode mode)
    : nl_(std::move(nl)), mode_(mode), drv_(*nl_) {
  // Mirror BehavioralEngine's construction-time reset() pulse: one setup
  // edge plus one idle edge, so cycle counts line up from cycle 0.
  drv_.reset();
  ++counters_.setup_resets;
  ++counters_.idle_cycles;
}

std::uint64_t NetlistEngine::load_key(std::span<const std::uint8_t> key) {
  if (key.size() != 16) throw std::invalid_argument("NetlistEngine: key must be 16 bytes");
  const bool needs_setup = mode_ != core::IpMode::kEncrypt;
  drv_.load_key(key, needs_setup);
  std::copy(key.begin(), key.end(), resident_key_.begin());
  has_resident_key_ = true;
  ++counters_.key_writes;
  const std::uint64_t setup = needs_setup ? core::RijndaelIp::kKeySetupCycles : 0;
  counters_.key_setup_cycles += setup;
  return setup;
}

bool NetlistEngine::key_resident(std::span<const std::uint8_t> key) const {
  return has_resident_key_ && key.size() == 16 &&
         std::equal(key.begin(), key.end(), resident_key_.begin());
}

std::array<std::uint8_t, 16> NetlistEngine::do_process(std::span<const std::uint8_t> block,
                                                       bool encrypt) {
  const auto r = drv_.process(block, encrypt);
  if (!r) throw std::runtime_error("NetlistEngine: data_ok never rose (gate-level hang)");
  last_latency_ = static_cast<std::uint64_t>(r->cycles);
  // The gate FSM walks the same phases the behavioral model counts; derive
  // the identical attribution from the protocol events.
  const bool dec = mode_ == core::IpMode::kDecrypt || (mode_ == core::IpMode::kBoth && !encrypt);
  ++counters_.data_writes;
  ++counters_.idle_cycles;  // the load edge executes in kIdle (block start)
  counters_.bytesub_cycles +=
      static_cast<std::uint64_t>(core::RijndaelIp::kRounds * (core::RijndaelIp::kCyclesPerRound - 1));
  counters_.mix_cycles += core::RijndaelIp::kRounds;
  counters_.rounds_done += core::RijndaelIp::kRounds;
  ++(dec ? counters_.blocks_dec : counters_.blocks_enc);
  return r->data;
}

// --- factory -----------------------------------------------------------------

std::unique_ptr<CipherEngine> make_engine(EngineKind kind, core::IpMode mode) {
  switch (kind) {
    case EngineKind::kSoftware: return std::make_unique<SoftwareEngine>(mode);
    case EngineKind::kBehavioral: return std::make_unique<BehavioralEngine>(mode);
    case EngineKind::kNetlist: return std::make_unique<NetlistEngine>(mode);
  }
  throw std::invalid_argument("make_engine: unknown engine kind");
}

}  // namespace aesip::engine
