// The unified execution-engine layer: one interface over every way this
// repo can run the paper's cipher.
//
// A CipherEngine owns one cipher execution resource — a software AES, a
// cycle-accurate behavioral IP, or a synthesized gate netlist — behind one
// contract: load a key, submit a block, drain the result, and report where
// the simulated cycles went in `core::IpCounters` terms.  Everything above
// (the farm's workers, the CLI, the benches, the conformance suite) speaks
// this interface and never names a Simulator, BusDriver or Evaluator again.
//
// Cycle-cost semantics (see docs/engine.md for the full contract):
//
//   * SoftwareEngine    — aes::Rijndael, zero-cycle functional model: cycles()
//                         and last_latency() are always 0; the work counters
//                         (blocks, rounds) still advance.
//   * BehavioralEngine  — Simulator + RijndaelIp + GenericBusDriver; every
//                         Table 1 handshake is clocked, so counters() are
//                         the IP's own FSM-phase totals and last_latency()
//                         is the paper's 50 cycles.
//   * NetlistEngine     — GateIpDriver over the ip_synth netlist through
//                         netlist::Evaluator, same Table 1 protocol with the
//                         same cycle counts; behavioral and netlist engines
//                         agree on total cycles for any operation sequence
//                         (the conformance suite asserts it).
//
// Engines are single-threaded objects: one engine per worker, never shared.
// NetlistEngine construction is dominated by synthesis; farms amortize it
// by synthesizing one shared immutable netlist (make_ip_netlist) that all
// workers evaluate privately.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string_view>

#include <vector>

#include "aes/cipher.hpp"
#include "aes/ttable.hpp"
#include "arch/variant.hpp"
#include "core/bfm.hpp"
#include "core/gate_driver.hpp"
#include "core/rijndael_ip.hpp"
#include "hdl/simulator.hpp"
#include "netlist/netlist.hpp"

namespace aesip::engine {

enum class EngineKind { kSoftware, kBehavioral, kNetlist };

/// Canonical CLI spelling: "sw", "behavioral", "netlist".
const char* kind_name(EngineKind k) noexcept;

/// Parse a CLI spelling (accepts the aliases "software", "soft", "ip",
/// "behav", "gate"); nullopt for anything else.
std::optional<EngineKind> kind_from_name(std::string_view name) noexcept;

class CipherEngine {
 public:
  virtual ~CipherEngine() = default;

  CipherEngine(const CipherEngine&) = delete;
  CipherEngine& operator=(const CipherEngine&) = delete;

  virtual EngineKind kind() const noexcept = 0;
  const char* name() const noexcept { return kind_name(kind()); }
  virtual core::IpMode mode() const noexcept = 0;

  // --- key management --------------------------------------------------------
  /// Install a 16/24/32-byte key (AES-128/192/256); returns the key-setup
  /// cycles spent (4*Nr on decrypt-capable cycle engines, else 0).  Cycle
  /// engines are built for one geometry and reject keys of another size;
  /// the software engine re-derives its geometry from the key length.
  virtual std::uint64_t load_key(std::span<const std::uint8_t> key) = 0;
  /// True when `key` is installed and ready — a rekey() would cost 0 cycles.
  virtual bool key_resident(std::span<const std::uint8_t> key) const = 0;
  /// Fast-path key load: free when the key is already resident (the
  /// affinity hit the farm scheduler exists to create). Returns setup
  /// cycles spent (0 on a hit).
  virtual std::uint64_t rekey(std::span<const std::uint8_t> key) {
    if (key_resident(key)) return 0;
    return load_key(key);
  }

  // --- block path ------------------------------------------------------------
  /// Stage one 16-byte block for processing. At most one block may be in
  /// flight; a second submit before drain_result() throws.
  void submit_block(std::span<const std::uint8_t> block, bool encrypt = true) {
    if (staged_) throw std::logic_error("CipherEngine: block already submitted");
    if (block.size() != 16) throw std::invalid_argument("CipherEngine: block must be 16 bytes");
    std::array<std::uint8_t, 16> b{};
    for (std::size_t i = 0; i < 16; ++i) b[i] = block[i];
    staged_ = b;
    staged_encrypt_ = encrypt;
  }
  /// Run the staged block to completion and return the 16-byte result.
  std::array<std::uint8_t, 16> drain_result() {
    if (!staged_) throw std::logic_error("CipherEngine: no block submitted");
    const std::array<std::uint8_t, 16> b = *staged_;
    staged_.reset();
    return do_process(b, staged_encrypt_);
  }
  /// submit_block + drain_result in one call.
  std::array<std::uint8_t, 16> process_block(std::span<const std::uint8_t> block,
                                             bool encrypt = true) {
    submit_block(block, encrypt);
    return drain_result();
  }

  // --- batch path ------------------------------------------------------------
  /// Process in.size()/16 independent blocks in one call (ECB semantics:
  /// no chaining between them).  `in` and `out` must be the same whole
  /// number of 16-byte blocks.  The default implementation loops
  /// process_block; engines with a wider execution resource override it —
  /// NetlistEngine packs up to batch_lanes() blocks per evaluator pass,
  /// SoftwareEngine runs a T-table loop.  Identical results and identical
  /// cycles() growth as the scalar loop, whatever the override
  /// (test_engine_conformance asserts both).
  virtual void process_batch(std::span<const std::uint8_t> in, std::span<std::uint8_t> out,
                             bool encrypt = true);
  /// Blocks the engine can genuinely process per pass (1 unless batched).
  virtual std::size_t batch_lanes() const noexcept { return 1; }

  /// Name of the bit-parallel lane backend behind process_batch ("none"
  /// when blocks go one at a time; NetlistEngine reports its resolved
  /// netlist::BatchBackend — "u64", "neon", "avx2", "avx512" or "jit").
  virtual const char* batch_backend() const noexcept { return "none"; }

  /// Occupancy accounting for the batch path: how full the engine's lanes
  /// ran.  A "pass" is one execution-resource dispatch (one evaluator pass
  /// for the netlist engine; one block for loop engines), so
  /// blocks/passes/batch_lanes() is the achieved lane occupancy in [0,1].
  struct BatchStats {
    std::uint64_t calls = 0;   ///< process_batch invocations
    std::uint64_t blocks = 0;  ///< blocks processed through the batch path
    std::uint64_t passes = 0;  ///< execution-resource dispatches
    double mean_lanes() const noexcept {
      return passes ? static_cast<double>(blocks) / static_cast<double>(passes) : 0.0;
    }
  };
  const BatchStats& batch_stats() const noexcept { return batch_stats_; }

  // --- fault injection (fleet chaos hooks; see docs/fleet.md) ----------------
  /// Number of persistent state sites (DFFs) an SEU could upset; 0 for
  /// engines with no gate-level state to flip.
  virtual std::size_t fault_sites() const noexcept { return 0; }
  /// Flip the state bit at `site` (< fault_sites()) in the live engine —
  /// the software model of a standby single-event upset.  Returns false
  /// when the engine kind has nothing to upset (software/behavioral).
  virtual bool inject_fault(std::size_t site) {
    (void)site;
    return false;
  }

  // --- metrics ---------------------------------------------------------------
  /// Simulated clock cycles consumed so far (0 for zero-cycle engines).
  virtual std::uint64_t cycles() const noexcept = 0;
  /// Load-edge → data_ok cycles of the last completed block (the paper's
  /// 50-cycle latency on cycle engines; 0 on zero-cycle engines).
  virtual std::uint64_t last_latency() const noexcept = 0;
  /// FSM-phase cycle attribution in the IP's own terms.  Cycle engines
  /// satisfy the paper invariants (5 cy/round, 50 cy/block, 40-cy key
  /// setup); the software engine reports work counts with zero cycles.
  virtual core::IpCounters counters() const = 0;
  /// The underlying simulator when there is one to profile (behavioral
  /// engines only); null otherwise.
  virtual hdl::Simulator* simulator() noexcept { return nullptr; }

 protected:
  CipherEngine() = default;
  virtual std::array<std::uint8_t, 16> do_process(std::span<const std::uint8_t> block,
                                                  bool encrypt) = 0;
  /// Throws unless in/out are the same whole number of blocks; returns it.
  static std::size_t check_batch_spans(std::span<const std::uint8_t> in,
                                       std::span<std::uint8_t> out);

  BatchStats batch_stats_;

 private:
  std::optional<std::array<std::uint8_t, 16>> staged_;
  bool staged_encrypt_ = true;
};

/// Zero-cycle functional reference: aes::Rijndael behind the engine
/// contract.  Geometry-agnostic: the key length of each load_key selects
/// AES-128/192/256 (cycle engines fix their geometry at construction).
class SoftwareEngine final : public CipherEngine {
 public:
  explicit SoftwareEngine(core::IpMode mode = core::IpMode::kBoth) : mode_(mode) {}

  EngineKind kind() const noexcept override { return EngineKind::kSoftware; }
  core::IpMode mode() const noexcept override { return mode_; }

  std::uint64_t load_key(std::span<const std::uint8_t> key) override;
  bool key_resident(std::span<const std::uint8_t> key) const override;

  /// T-table loop over the batch — no transpose, no per-block virtual
  /// dispatch; same ciphertexts and counter growth as the scalar loop.
  void process_batch(std::span<const std::uint8_t> in, std::span<std::uint8_t> out,
                     bool encrypt = true) override;

  std::uint64_t cycles() const noexcept override { return 0; }
  std::uint64_t last_latency() const noexcept override { return 0; }
  core::IpCounters counters() const override { return counters_; }

 protected:
  std::array<std::uint8_t, 16> do_process(std::span<const std::uint8_t> block,
                                          bool encrypt) override;

 private:
  core::IpMode mode_;
  std::optional<aes::Rijndael> aes_;
  std::optional<aes::TTableRijndael> ttable_;  ///< batch path, built per key
  std::array<std::uint8_t, 32> resident_key_{};
  std::size_t resident_key_len_ = 0;
  int rounds_ = 10;  ///< Nr of the resident key's geometry
  core::IpCounters counters_;
};

/// The cycle-accurate RTL model behind the engine contract: a private
/// Simulator plus one behavioral core — the paper's RijndaelIp for
/// iterative specs, the arch::VariantIp twin for the rest of the variant
/// family — behind a GenericBusDriver each.
class BehavioralEngine final : public CipherEngine {
 public:
  explicit BehavioralEngine(core::IpMode mode = core::IpMode::kBoth)
      : BehavioralEngine(arch::VariantSpec{}, mode) {}
  /// Any family member; the engine's declared schedule is `spec`'s.
  BehavioralEngine(const arch::VariantSpec& spec, core::IpMode mode);

  EngineKind kind() const noexcept override { return EngineKind::kBehavioral; }
  core::IpMode mode() const noexcept override { return mode_; }
  const arch::VariantSpec& variant() const noexcept { return spec_; }

  std::uint64_t load_key(std::span<const std::uint8_t> key) override {
    check_key_length(key);
    return var_bus_ ? var_bus_->load_key(key) : bus_->load_key(key);
  }
  bool key_resident(std::span<const std::uint8_t> key) const override {
    return var_bus_ ? var_bus_->key_resident(key) : bus_->key_resident(key);
  }
  std::uint64_t rekey(std::span<const std::uint8_t> key) override {
    check_key_length(key);
    return var_bus_ ? var_bus_->rekey(key) : bus_->rekey(key);
  }

  std::uint64_t cycles() const noexcept override { return sim_.cycle(); }
  std::uint64_t last_latency() const noexcept override {
    return var_bus_ ? var_bus_->last_latency() : bus_->last_latency();
  }
  core::IpCounters counters() const override {
    return var_ip_ ? var_ip_->counters() : ip_->counters();
  }
  hdl::Simulator* simulator() noexcept override { return &sim_; }

  /// Bus-master-side accounting (resets, rekey hits, stream stats) —
  /// observability beyond the engine contract.
  const core::BusCounters& bus_counters() const noexcept {
    return var_bus_ ? var_bus_->counters() : bus_->counters();
  }
  /// The paper-core bus driver; throws on non-iterative engines (their bus
  /// is a GenericBusDriver<VariantIp>, a different concrete type).
  core::BusDriver& bus() {
    if (!bus_) throw std::logic_error("BehavioralEngine: variant engine has no paper-core bus");
    return *bus_;
  }

 protected:
  std::array<std::uint8_t, 16> do_process(std::span<const std::uint8_t> block,
                                          bool encrypt) override {
    return var_bus_ ? var_bus_->process_block(block, encrypt)
                    : bus_->process_block(block, encrypt);
  }

 private:
  /// The core's geometry is fixed at construction; a key of any other
  /// length is a caller bug, caught before it reaches the bus.
  void check_key_length(std::span<const std::uint8_t> key) const {
    if (static_cast<int>(key.size()) * 8 != spec_.key_bits)
      throw std::invalid_argument("engine: " + spec_.name() + " takes a " +
                                  std::to_string(spec_.key_bits / 8) + "-byte key");
  }

  hdl::Simulator sim_;
  arch::VariantSpec spec_;
  core::IpMode mode_;
  // Exactly one pair is populated, chosen by spec_.is_iterative().
  std::unique_ptr<core::RijndaelIp> ip_;
  std::unique_ptr<core::BusDriver> bus_;
  std::unique_ptr<arch::VariantIp> var_ip_;
  std::unique_ptr<core::GenericBusDriver<arch::VariantIp>> var_bus_;
};

/// Synthesize the IP netlist an engine (or a farm of them) will evaluate.
/// Immutable and thread-safe to share: each engine gets its own Evaluator
/// state over the common gate graph.  `key_bits` selects the Rijndael key
/// size the core is built for (128/192/256).
std::shared_ptr<const netlist::Netlist> make_ip_netlist(core::IpMode mode, int key_bits = 128);

/// Synthesize the gate netlist of any variant-family member, sharable the
/// same way (farms cache one per variant name).
std::shared_ptr<const netlist::Netlist> make_variant_netlist(const arch::VariantSpec& spec,
                                                             core::IpMode mode);

/// The synthesized gate netlist behind the engine contract, driven through
/// netlist::BatchEvaluator with the same Table 1 handshake the behavioral
/// bus driver performs — cycle counts match BehavioralEngine exactly.  A
/// scalar process_block is a 1-lane batch; process_batch packs up to
/// batch_lanes() blocks per evaluator pass (the bit-parallel fast path,
/// ~proportional speedup with occupancy; 64 lanes on the portable uint64
/// backend, up to 512 on AVX-512 — runtime-dispatched, see
/// netlist/batch_backend.hpp).  The scalar netlist::Evaluator remains the
/// oracle for SEU/power campaigns — this engine never uses it.
class NetlistEngine final : public CipherEngine {
 public:
  NetlistEngine(std::shared_ptr<const netlist::Netlist> nl, core::IpMode mode,
                const netlist::BatchConfig& cfg = {});
  explicit NetlistEngine(core::IpMode mode = core::IpMode::kBoth)
      : NetlistEngine(make_ip_netlist(mode), mode) {}
  /// Any variant-family member over an already-synthesized netlist (`nl`
  /// must be the gate graph of `spec` — farms pass their per-variant cache).
  /// `cfg` overrides the batch backend / shard threads (testing knob).
  NetlistEngine(std::shared_ptr<const netlist::Netlist> nl, const arch::VariantSpec& spec,
                core::IpMode mode, const netlist::BatchConfig& cfg = {});
  /// Synthesizing convenience for one-off variant engines.
  NetlistEngine(const arch::VariantSpec& spec, core::IpMode mode)
      : NetlistEngine(make_variant_netlist(spec, mode), spec, mode) {}

  EngineKind kind() const noexcept override { return EngineKind::kNetlist; }
  core::IpMode mode() const noexcept override { return mode_; }
  const arch::VariantSpec& variant() const noexcept { return spec_; }

  std::uint64_t load_key(std::span<const std::uint8_t> key) override;
  bool key_resident(std::span<const std::uint8_t> key) const override;

  /// Lane-packed batch: up to batch_lanes() blocks per gate-level pass.
  void process_batch(std::span<const std::uint8_t> in, std::span<std::uint8_t> out,
                     bool encrypt = true) override;
  std::size_t batch_lanes() const noexcept override { return drv_.lanes(); }
  const char* batch_backend() const noexcept override;

  std::uint64_t cycles() const noexcept override { return drv_.cycles(); }
  std::uint64_t last_latency() const noexcept override { return last_latency_; }
  core::IpCounters counters() const override { return counters_; }

  /// Every DFF in the evaluated netlist is a fault site.
  std::size_t fault_sites() const noexcept override;
  /// Flip the DFF at `site` in ALL lanes and re-settle combinationally —
  /// the state stays corrupted until the next reset/key-load rewrites it.
  bool inject_fault(std::size_t site) override;

  /// The shared gate graph this engine evaluates (fleet fault-site
  /// classification reads the DFF list through this).
  const std::shared_ptr<const netlist::Netlist>& netlist() const noexcept { return nl_; }

 protected:
  std::array<std::uint8_t, 16> do_process(std::span<const std::uint8_t> block,
                                          bool encrypt) override;

 private:
  /// One gate-level pass over `n` <= 64 staged blocks + counter attribution.
  void run_pass(std::span<const std::uint8_t> in, std::span<std::uint8_t> out, std::size_t n,
                bool encrypt);

  std::shared_ptr<const netlist::Netlist> nl_;
  arch::VariantSpec spec_;
  core::IpMode mode_;
  core::GateIpBatchDriver drv_;
  std::uint64_t last_latency_ = 0;
  std::array<std::uint8_t, 32> resident_key_{};
  std::size_t resident_key_len_ = 0;
  core::IpCounters counters_;
};

/// Build an engine of the requested kind (netlist engines synthesize a
/// private netlist; prefer the shared-netlist NetlistEngine constructor
/// when creating many).
std::unique_ptr<CipherEngine> make_engine(EngineKind kind,
                                          core::IpMode mode = core::IpMode::kBoth);

/// Build an engine of the requested kind running the requested variant.
/// Software engines are variant-blind (every variant computes the same
/// function); cycle engines take `spec`'s schedule and datapath.
std::unique_ptr<CipherEngine> make_engine(EngineKind kind, const arch::VariantSpec& spec,
                                          core::IpMode mode = core::IpMode::kBoth);

/// BlockCipher128/BlockDecipher128-concept adapter: lets the aes:: modes of
/// operation (ECB/CBC/CTR) run their traffic through any engine.
class EngineBlockCipher {
 public:
  explicit EngineBlockCipher(CipherEngine& e) : e_(&e) {}

  void encrypt_block(std::span<const std::uint8_t> in, std::span<std::uint8_t> out) const {
    const auto r = e_->process_block(in, /*encrypt=*/true);
    for (std::size_t i = 0; i < 16; ++i) out[i] = r[i];
  }
  void decrypt_block(std::span<const std::uint8_t> in, std::span<std::uint8_t> out) const {
    const auto r = e_->process_block(in, /*encrypt=*/false);
    for (std::size_t i = 0; i < 16; ++i) out[i] = r[i];
  }

 private:
  CipherEngine* e_;
};

}  // namespace aesip::engine
