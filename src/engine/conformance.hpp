// Cross-engine conformance vectors, shared by tests/test_engine_conformance
// and the `aesip selftest` subcommand.
//
// One engine-agnostic runner: FIPS-197 Appendix B and Appendix C.1 vectors
// (encrypt and, on decrypt-capable devices, decrypt), a Monte Carlo
// encryption chain checked against the software reference, and the paper's
// cycle invariants (50-cycle latency, 40-cycle key setup, 5 cycles/round)
// on engines that model time.  Every engine kind must pass the same run —
// that is the point of the engine layer.
#pragma once

#include <string>
#include <vector>

#include "engine/engine.hpp"

namespace aesip::engine {

struct ConformanceResult {
  int checks = 0;
  int failures = 0;
  std::vector<std::string> messages;  ///< one line per failed check
  std::uint64_t total_cycles = 0;     ///< engine cycles consumed by the run
  bool ok() const noexcept { return failures == 0; }
};

/// FIPS-197 Appendix B: key/plaintext/ciphertext.
extern const std::array<std::uint8_t, 16> kFipsBKey;
extern const std::array<std::uint8_t, 16> kFipsBPlain;
extern const std::array<std::uint8_t, 16> kFipsBCipher;
/// FIPS-197 Appendix C.1: key/plaintext/ciphertext.
extern const std::array<std::uint8_t, 16> kFipsC1Key;
extern const std::array<std::uint8_t, 16> kFipsC1Plain;
extern const std::array<std::uint8_t, 16> kFipsC1Cipher;

/// The cycle prices a timed engine is held to.  The defaults are the
/// paper's; variant engines declare their own (timing_for_variant).  All
/// zeroed internally for zero-cycle (software) engines.
struct TimingExpectation {
  std::uint64_t block_latency = core::RijndaelIp::kCyclesPerBlock;  ///< load edge -> data_ok
  std::uint64_t key_setup = core::RijndaelIp::kKeySetupCycles;      ///< mode-resolved, see below
  std::uint64_t cycles_per_round = core::RijndaelIp::kCyclesPerRound;
};

/// The paper core's expectation for `mode` (key_setup is 0 on
/// encrypt-only devices, 40 otherwise).
TimingExpectation paper_timing(core::IpMode mode) noexcept;

/// A variant-family member's declared schedule as a conformance contract.
TimingExpectation timing_for_variant(const arch::VariantSpec& spec, core::IpMode mode) noexcept;

/// Run the conformance vectors on `e` (expects a kBoth device).
/// `monte_carlo_iters` chained encryptions are compared against the
/// software reference (1000 for the full FIPS-style chain; netlist callers
/// may pass fewer to bound gate-level runtime).
ConformanceResult run_conformance(CipherEngine& e, int monte_carlo_iters = 1000);

/// Same vectors, holding a timed engine to `expect` instead of the paper's
/// prices — the variant-family entry point.
ConformanceResult run_conformance(CipherEngine& e, const TimingExpectation& expect,
                                  int monte_carlo_iters = 1000);

}  // namespace aesip::engine
