// Cross-engine conformance vectors, shared by tests/test_engine_conformance
// and the `aesip selftest` subcommand.
//
// One engine-agnostic runner: the FIPS-197 vectors for the engine's key
// size — Appendix B + C.1 at 128, C.2 at 192, C.3 at 256 — (encrypt and,
// on decrypt-capable devices, decrypt), a Monte Carlo encryption chain
// checked against the software reference, and the declared cycle
// invariants (5*Nr-cycle latency, 4*Nr-cycle key setup, 5 cycles/round on
// the paper core) on engines that model time.  Every engine kind must pass
// the same run at every key size — that is the point of the engine layer.
#pragma once

#include <string>
#include <vector>

#include "engine/engine.hpp"

namespace aesip::engine {

struct ConformanceResult {
  int checks = 0;
  int failures = 0;
  std::vector<std::string> messages;  ///< one line per failed check
  std::uint64_t total_cycles = 0;     ///< engine cycles consumed by the run
  bool ok() const noexcept { return failures == 0; }
};

/// FIPS-197 Appendix B: key/plaintext/ciphertext.
extern const std::array<std::uint8_t, 16> kFipsBKey;
extern const std::array<std::uint8_t, 16> kFipsBPlain;
extern const std::array<std::uint8_t, 16> kFipsBCipher;
/// FIPS-197 Appendix C.1: key/plaintext/ciphertext (AES-128).
extern const std::array<std::uint8_t, 16> kFipsC1Key;
extern const std::array<std::uint8_t, 16> kFipsC1Plain;
extern const std::array<std::uint8_t, 16> kFipsC1Cipher;
/// FIPS-197 Appendix C.2: 24-byte key/ciphertext (AES-192; same plaintext
/// as C.1).
extern const std::array<std::uint8_t, 24> kFipsC2Key;
extern const std::array<std::uint8_t, 16> kFipsC2Cipher;
/// FIPS-197 Appendix C.3: 32-byte key/ciphertext (AES-256).
extern const std::array<std::uint8_t, 32> kFipsC3Key;
extern const std::array<std::uint8_t, 16> kFipsC3Cipher;

/// The cycle prices a timed engine is held to.  The defaults are the
/// paper's; variant engines declare their own (timing_for_variant).  All
/// zeroed internally for zero-cycle (software) engines.
struct TimingExpectation {
  std::uint64_t block_latency = core::RijndaelIp::kCyclesPerBlock;  ///< load edge -> data_ok
  std::uint64_t key_setup = core::RijndaelIp::kKeySetupCycles;      ///< mode-resolved, see below
  std::uint64_t cycles_per_round = core::RijndaelIp::kCyclesPerRound;
  std::uint64_t rounds = core::RijndaelIp::kRounds;  ///< Nr of the geometry
  int key_bits = 128;  ///< selects the FIPS vector suite the runner uses
};

/// The paper core's expectation for `mode` at `key_bits` (key_setup is 0
/// on encrypt-only devices, 4*Nr otherwise; latency 5*Nr).
TimingExpectation paper_timing(core::IpMode mode, int key_bits = 128) noexcept;

/// A variant-family member's declared schedule as a conformance contract.
TimingExpectation timing_for_variant(const arch::VariantSpec& spec, core::IpMode mode) noexcept;

/// Run the conformance vectors on `e` (expects a kBoth device built for
/// the paper geometry, AES-128).
/// `monte_carlo_iters` chained encryptions are compared against the
/// software reference (1000 for the full FIPS-style chain; netlist callers
/// may pass fewer to bound gate-level runtime).
ConformanceResult run_conformance(CipherEngine& e, int monte_carlo_iters = 1000);

/// Same vectors, holding a timed engine to `expect` instead of the paper's
/// prices — the variant-family entry point.
ConformanceResult run_conformance(CipherEngine& e, const TimingExpectation& expect,
                                  int monte_carlo_iters = 1000);

}  // namespace aesip::engine
