// Cross-engine conformance vectors, shared by tests/test_engine_conformance
// and the `aesip selftest` subcommand.
//
// One engine-agnostic runner: FIPS-197 Appendix B and Appendix C.1 vectors
// (encrypt and, on decrypt-capable devices, decrypt), a Monte Carlo
// encryption chain checked against the software reference, and the paper's
// cycle invariants (50-cycle latency, 40-cycle key setup, 5 cycles/round)
// on engines that model time.  Every engine kind must pass the same run —
// that is the point of the engine layer.
#pragma once

#include <string>
#include <vector>

#include "engine/engine.hpp"

namespace aesip::engine {

struct ConformanceResult {
  int checks = 0;
  int failures = 0;
  std::vector<std::string> messages;  ///< one line per failed check
  std::uint64_t total_cycles = 0;     ///< engine cycles consumed by the run
  bool ok() const noexcept { return failures == 0; }
};

/// FIPS-197 Appendix B: key/plaintext/ciphertext.
extern const std::array<std::uint8_t, 16> kFipsBKey;
extern const std::array<std::uint8_t, 16> kFipsBPlain;
extern const std::array<std::uint8_t, 16> kFipsBCipher;
/// FIPS-197 Appendix C.1: key/plaintext/ciphertext.
extern const std::array<std::uint8_t, 16> kFipsC1Key;
extern const std::array<std::uint8_t, 16> kFipsC1Plain;
extern const std::array<std::uint8_t, 16> kFipsC1Cipher;

/// Run the conformance vectors on `e` (expects a kBoth device).
/// `monte_carlo_iters` chained encryptions are compared against the
/// software reference (1000 for the full FIPS-style chain; netlist callers
/// may pass fewer to bound gate-level runtime).
ConformanceResult run_conformance(CipherEngine& e, int monte_carlo_iters = 1000);

}  // namespace aesip::engine
