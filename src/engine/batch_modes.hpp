// Modes of operation over CipherEngine::process_batch.
//
// The aes:: mode templates drive one block at a time through the
// BlockCipher128 concept; these helpers route the block-parallel parts of
// each mode through the engine's batch path instead, so a lane-packed
// engine (NetlistEngine: batch_lanes() blocks per gate-level pass — 64 on
// the portable backend, up to 512 on AVX-512) sees full batches:
//
//   * ECB — every block is independent: straight chunked process_batch.
//   * CBC decrypt — the block cipher inputs are the ciphertext blocks,
//     which are all known up front: batch-decrypt, then XOR each plaintext
//     with the previous ciphertext (IV first).  CBC *encrypt* is a chain
//     (block i's input depends on block i-1's output) and cannot batch;
//     callers keep aes::cbc_encrypt for it.
//   * CTR — the keystream is the forward cipher over counter blocks known
//     up front: batch-encrypt the counters, XOR with the payload (any
//     length; the tail uses a partial keystream block).
//
// Every helper is bit-identical to its aes:: counterpart for any engine
// (the default process_batch is a process_block loop), and takes a `batch`
// cap — the most blocks handed to one process_batch call — so the CLI's
// --batch N can bound latency per pass.  `batch = 0` (the default) means
// "the engine's own lane width": every pass is exactly one full
// e.batch_lanes() batch, whatever backend the engine resolved.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "engine/engine.hpp"

namespace aesip::engine {

/// ECB over whole blocks. Precondition: data.size() % 16 == 0.
std::vector<std::uint8_t> ecb_crypt_batched(CipherEngine& e, std::span<const std::uint8_t> data,
                                            bool encrypt, std::size_t batch = 0);

/// CBC decryption over whole blocks (encrypt is a chain — use
/// aes::cbc_encrypt through EngineBlockCipher).
std::vector<std::uint8_t> cbc_decrypt_batched(CipherEngine& e,
                                              std::span<const std::uint8_t, 16> iv,
                                              std::span<const std::uint8_t> data,
                                              std::size_t batch = 0);

/// CTR over any length; same big-endian full-width counter convention as
/// aes::ctr_crypt (encryption and decryption are the same operation).
std::vector<std::uint8_t> ctr_crypt_batched(CipherEngine& e,
                                            std::span<const std::uint8_t, 16> initial_counter,
                                            std::span<const std::uint8_t> data,
                                            std::size_t batch = 0);

}  // namespace aesip::engine
