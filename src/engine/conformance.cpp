#include "engine/conformance.hpp"

#include <cstdio>

#include "aes/cipher.hpp"

namespace aesip::engine {

const std::array<std::uint8_t, 16> kFipsBKey = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                                                0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
const std::array<std::uint8_t, 16> kFipsBPlain = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                                                  0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
const std::array<std::uint8_t, 16> kFipsBCipher = {0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb,
                                                   0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32};
const std::array<std::uint8_t, 16> kFipsC1Key = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                                                 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
const std::array<std::uint8_t, 16> kFipsC1Plain = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                                                   0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
const std::array<std::uint8_t, 16> kFipsC1Cipher = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
                                                    0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};
const std::array<std::uint8_t, 24> kFipsC2Key = {
    0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b,
    0x0c, 0x0d, 0x0e, 0x0f, 0x10, 0x11, 0x12, 0x13, 0x14, 0x15, 0x16, 0x17};
const std::array<std::uint8_t, 16> kFipsC2Cipher = {0xdd, 0xa9, 0x7c, 0xa4, 0x86, 0x4c, 0xdf, 0xe0,
                                                    0x6e, 0xaf, 0x70, 0xa0, 0xec, 0x0d, 0x71, 0x91};
const std::array<std::uint8_t, 32> kFipsC3Key = {
    0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a,
    0x0b, 0x0c, 0x0d, 0x0e, 0x0f, 0x10, 0x11, 0x12, 0x13, 0x14, 0x15,
    0x16, 0x17, 0x18, 0x19, 0x1a, 0x1b, 0x1c, 0x1d, 0x1e, 0x1f};
const std::array<std::uint8_t, 16> kFipsC3Cipher = {0x8e, 0xa2, 0xb7, 0xca, 0x51, 0x67, 0x45, 0xbf,
                                                    0xea, 0xfc, 0x49, 0x90, 0x4b, 0x49, 0x60, 0x89};

namespace {

std::string hex(std::span<const std::uint8_t> bytes) {
  std::string s;
  char buf[3];
  for (std::uint8_t b : bytes) {
    std::snprintf(buf, sizeof buf, "%02x", b);
    s += buf;
  }
  return s;
}

struct Checker {
  ConformanceResult& r;

  void equal_bytes(std::span<const std::uint8_t> got, std::span<const std::uint8_t> want,
                   const std::string& what) {
    ++r.checks;
    if (got.size() == want.size() && std::equal(got.begin(), got.end(), want.begin())) return;
    ++r.failures;
    r.messages.push_back(what + ": got " + hex(got) + ", want " + hex(want));
  }

  void equal_u64(std::uint64_t got, std::uint64_t want, const std::string& what) {
    ++r.checks;
    if (got == want) return;
    ++r.failures;
    r.messages.push_back(what + ": got " + std::to_string(got) + ", want " +
                         std::to_string(want));
  }
};

}  // namespace

TimingExpectation paper_timing(core::IpMode mode, int key_bits) noexcept {
  arch::VariantSpec spec;  // iterative by default
  spec.key_bits = key_bits;
  return timing_for_variant(spec, mode);
}

TimingExpectation timing_for_variant(const arch::VariantSpec& spec, core::IpMode mode) noexcept {
  TimingExpectation t;
  t.block_latency = static_cast<std::uint64_t>(spec.block_latency_cycles());
  t.key_setup = static_cast<std::uint64_t>(spec.key_setup_cycles(mode));
  t.cycles_per_round = static_cast<std::uint64_t>(spec.cycles_per_round());
  t.rounds = static_cast<std::uint64_t>(spec.nr());
  t.key_bits = spec.key_bits;
  return t;
}

ConformanceResult run_conformance(CipherEngine& e, int monte_carlo_iters) {
  return run_conformance(e, paper_timing(e.mode()), monte_carlo_iters);
}

ConformanceResult run_conformance(CipherEngine& e, const TimingExpectation& expect,
                                  int monte_carlo_iters) {
  ConformanceResult res;
  Checker ck{res};
  const std::uint64_t cycles0 = e.cycles();
  // An engine that models time pays its declared cycle prices; the
  // software engine is zero-cycle by contract.
  const bool timed = e.kind() != EngineKind::kSoftware;
  const std::uint64_t block_latency = timed ? expect.block_latency : 0;
  const std::uint64_t key_setup = timed ? expect.key_setup : 0;

  // The published vector suite for the geometry: Appendix B at 128 (with
  // C.1 as a second key below), C.2 at 192, C.3 at 256.  C.2/C.3 share the
  // C.1 plaintext.
  std::span<const std::uint8_t> key1, cipher1;
  const char* suite = "?";
  switch (expect.key_bits) {
    case 128: key1 = kFipsBKey; cipher1 = kFipsBCipher; suite = "B"; break;
    case 192: key1 = kFipsC2Key; cipher1 = kFipsC2Cipher; suite = "C.2"; break;
    case 256: key1 = kFipsC3Key; cipher1 = kFipsC3Cipher; suite = "C.3"; break;
    default:
      ++res.checks;
      ++res.failures;
      res.messages.push_back("unsupported key_bits " + std::to_string(expect.key_bits));
      return res;
  }
  const std::span<const std::uint8_t> plain1 =
      expect.key_bits == 128 ? std::span<const std::uint8_t>(kFipsBPlain)
                             : std::span<const std::uint8_t>(kFipsC1Plain);
  const std::string tag = std::string(e.name()) + " FIPS-197 Appendix " + suite;

  // --- the published vector --------------------------------------------------
  ck.equal_u64(e.load_key(key1), key_setup, tag + " key setup cycles");
  auto ct = e.process_block(plain1, /*encrypt=*/true);
  ck.equal_bytes(ct, cipher1, tag + " encrypt");
  ck.equal_u64(e.last_latency(), block_latency, tag + " block latency");
  if (e.mode() == core::IpMode::kBoth) {
    auto pt = e.process_block(cipher1, /*encrypt=*/false);
    ck.equal_bytes(pt, plain1, tag + " decrypt");
    ck.equal_u64(e.last_latency(), block_latency, tag + " decrypt latency");
  }

  // --- a second key (re-key path) --------------------------------------------
  // 128 has a second published vector (C.1); the wider sizes flip one byte
  // of the suite key and check against the software reference.
  std::vector<std::uint8_t> key2(key1.begin(), key1.end());
  std::span<const std::uint8_t> plain2 = plain1;
  std::array<std::uint8_t, 16> cipher2{};
  if (expect.key_bits == 128) {
    key2.assign(kFipsC1Key.begin(), kFipsC1Key.end());
    plain2 = kFipsC1Plain;
    cipher2 = kFipsC1Cipher;
  } else {
    key2[0] ^= 0xff;
    aes::Rijndael::for_key(key2).encrypt_block(plain2, cipher2);
  }
  ck.equal_u64(e.load_key(key2), key_setup, std::string(e.name()) + " second key setup cycles");
  ck.equal_u64(e.rekey(key2), 0, std::string(e.name()) + " resident rekey cycles");
  ct = e.process_block(plain2, /*encrypt=*/true);
  ck.equal_bytes(ct, cipher2, std::string(e.name()) + " second-key encrypt");
  if (e.mode() == core::IpMode::kBoth) {
    auto pt = e.process_block(cipher2, /*encrypt=*/false);
    ck.equal_bytes(pt, plain2, std::string(e.name()) + " second-key decrypt");
  }

  // --- Monte Carlo chain ---------------------------------------------------
  // ct_{i} = E(ct_{i-1}) from the suite plaintext, checked against the
  // software reference at the end of the chain (any single-block divergence
  // avalanches into the final value).
  if (monte_carlo_iters > 0) {
    const aes::Rijndael ref = aes::Rijndael::for_key(key1);
    std::array<std::uint8_t, 16> want{};
    std::copy(plain1.begin(), plain1.end(), want.begin());
    for (int i = 0; i < monte_carlo_iters; ++i) {
      std::array<std::uint8_t, 16> next{};
      ref.encrypt_block(want, next);
      want = next;
    }
    ck.equal_u64(e.rekey(key1), key_setup,
                 std::string(e.name()) + " Monte Carlo rekey cycles");
    std::array<std::uint8_t, 16> got{};
    std::copy(plain1.begin(), plain1.end(), got.begin());
    for (int i = 0; i < monte_carlo_iters; ++i) got = e.process_block(got, /*encrypt=*/true);
    ck.equal_bytes(got, want, std::string(e.name()) + " Monte Carlo chain (" +
                                  std::to_string(monte_carlo_iters) + " iterations)");
  }

  // --- declared cycle invariants ---------------------------------------------
  const core::IpCounters c = e.counters();
  if (timed) {
    ck.equal_u64(c.round_cycles(), c.rounds_done * expect.cycles_per_round,
                 std::string(e.name()) + " cycles/round invariant");
    ck.equal_u64(c.round_cycles(), c.blocks() * expect.cycles_per_round * expect.rounds,
                 std::string(e.name()) + " cycles/block invariant");
  } else {
    ck.equal_u64(e.cycles(), 0, std::string(e.name()) + " zero-cycle contract");
  }
  ck.equal_u64(c.rounds_done, c.blocks() * expect.rounds,
               std::string(e.name()) + " rounds per block");

  res.total_cycles = e.cycles() - cycles0;
  return res;
}

}  // namespace aesip::engine
