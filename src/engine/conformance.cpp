#include "engine/conformance.hpp"

#include <cstdio>

#include "aes/cipher.hpp"

namespace aesip::engine {

const std::array<std::uint8_t, 16> kFipsBKey = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                                                0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
const std::array<std::uint8_t, 16> kFipsBPlain = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                                                  0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
const std::array<std::uint8_t, 16> kFipsBCipher = {0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb,
                                                   0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32};
const std::array<std::uint8_t, 16> kFipsC1Key = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                                                 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
const std::array<std::uint8_t, 16> kFipsC1Plain = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                                                   0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
const std::array<std::uint8_t, 16> kFipsC1Cipher = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
                                                    0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};

namespace {

std::string hex(std::span<const std::uint8_t> bytes) {
  std::string s;
  char buf[3];
  for (std::uint8_t b : bytes) {
    std::snprintf(buf, sizeof buf, "%02x", b);
    s += buf;
  }
  return s;
}

struct Checker {
  ConformanceResult& r;

  void equal_bytes(std::span<const std::uint8_t> got, std::span<const std::uint8_t> want,
                   const std::string& what) {
    ++r.checks;
    if (got.size() == want.size() && std::equal(got.begin(), got.end(), want.begin())) return;
    ++r.failures;
    r.messages.push_back(what + ": got " + hex(got) + ", want " + hex(want));
  }

  void equal_u64(std::uint64_t got, std::uint64_t want, const std::string& what) {
    ++r.checks;
    if (got == want) return;
    ++r.failures;
    r.messages.push_back(what + ": got " + std::to_string(got) + ", want " +
                         std::to_string(want));
  }
};

}  // namespace

TimingExpectation paper_timing(core::IpMode mode) noexcept {
  TimingExpectation t;
  if (mode == core::IpMode::kEncrypt) t.key_setup = 0;
  return t;
}

TimingExpectation timing_for_variant(const arch::VariantSpec& spec, core::IpMode mode) noexcept {
  TimingExpectation t;
  t.block_latency = static_cast<std::uint64_t>(spec.block_latency_cycles());
  t.key_setup = static_cast<std::uint64_t>(spec.key_setup_cycles(mode));
  t.cycles_per_round = static_cast<std::uint64_t>(spec.cycles_per_round());
  return t;
}

ConformanceResult run_conformance(CipherEngine& e, int monte_carlo_iters) {
  return run_conformance(e, paper_timing(e.mode()), monte_carlo_iters);
}

ConformanceResult run_conformance(CipherEngine& e, const TimingExpectation& expect,
                                  int monte_carlo_iters) {
  ConformanceResult res;
  Checker ck{res};
  const std::uint64_t cycles0 = e.cycles();
  // An engine that models time pays its declared cycle prices; the
  // software engine is zero-cycle by contract.
  const bool timed = e.kind() != EngineKind::kSoftware;
  const std::uint64_t block_latency = timed ? expect.block_latency : 0;
  const std::uint64_t key_setup = timed ? expect.key_setup : 0;

  // --- FIPS-197 Appendix B -------------------------------------------------
  ck.equal_u64(e.load_key(kFipsBKey), key_setup, std::string(e.name()) + " B key setup cycles");
  auto ct = e.process_block(kFipsBPlain, /*encrypt=*/true);
  ck.equal_bytes(ct, kFipsBCipher, std::string(e.name()) + " FIPS-197 Appendix B encrypt");
  ck.equal_u64(e.last_latency(), block_latency, std::string(e.name()) + " B block latency");
  if (e.mode() == core::IpMode::kBoth) {
    auto pt = e.process_block(kFipsBCipher, /*encrypt=*/false);
    ck.equal_bytes(pt, kFipsBPlain, std::string(e.name()) + " FIPS-197 Appendix B decrypt");
    ck.equal_u64(e.last_latency(), block_latency, std::string(e.name()) + " B decrypt latency");
  }

  // --- FIPS-197 Appendix C.1 ----------------------------------------------
  ck.equal_u64(e.load_key(kFipsC1Key), key_setup, std::string(e.name()) + " C.1 key setup cycles");
  ck.equal_u64(e.rekey(kFipsC1Key), 0, std::string(e.name()) + " resident rekey cycles");
  ct = e.process_block(kFipsC1Plain, /*encrypt=*/true);
  ck.equal_bytes(ct, kFipsC1Cipher, std::string(e.name()) + " FIPS-197 Appendix C.1 encrypt");
  if (e.mode() == core::IpMode::kBoth) {
    auto pt = e.process_block(kFipsC1Cipher, /*encrypt=*/false);
    ck.equal_bytes(pt, kFipsC1Plain, std::string(e.name()) + " FIPS-197 Appendix C.1 decrypt");
  }

  // --- Monte Carlo chain ---------------------------------------------------
  // ct_{i} = E(ct_{i-1}) from the Appendix B plaintext, checked against the
  // software reference at the end of the chain (any single-block divergence
  // avalanches into the final value).
  if (monte_carlo_iters > 0) {
    aes::Aes128 ref(kFipsBKey);
    std::array<std::uint8_t, 16> want = kFipsBPlain;
    for (int i = 0; i < monte_carlo_iters; ++i) {
      std::array<std::uint8_t, 16> next{};
      ref.encrypt_block(want, next);
      want = next;
    }
    ck.equal_u64(e.rekey(kFipsBKey), key_setup,
                 std::string(e.name()) + " Monte Carlo rekey cycles");
    std::array<std::uint8_t, 16> got = kFipsBPlain;
    for (int i = 0; i < monte_carlo_iters; ++i) got = e.process_block(got, /*encrypt=*/true);
    ck.equal_bytes(got, want, std::string(e.name()) + " Monte Carlo chain (" +
                                  std::to_string(monte_carlo_iters) + " iterations)");
  }

  // --- paper cycle invariants ----------------------------------------------
  const core::IpCounters c = e.counters();
  if (timed) {
    ck.equal_u64(c.round_cycles(), c.rounds_done * expect.cycles_per_round,
                 std::string(e.name()) + " cycles/round invariant");
    ck.equal_u64(c.round_cycles(),
                 c.blocks() * expect.cycles_per_round * core::RijndaelIp::kRounds,
                 std::string(e.name()) + " cycles/block invariant");
  } else {
    ck.equal_u64(e.cycles(), 0, std::string(e.name()) + " zero-cycle contract");
  }
  ck.equal_u64(c.rounds_done, c.blocks() * core::RijndaelIp::kRounds,
               std::string(e.name()) + " rounds per block");

  res.total_cycles = e.cycles() - cycles0;
  return res;
}

}  // namespace aesip::engine
