#include "engine/batch_modes.hpp"

#include <algorithm>
#include <stdexcept>

#include "aes/modes.hpp"

namespace aesip::engine {

namespace {

/// 0 = the engine's native lane width (full batches on any backend).
std::size_t clamp_batch(const CipherEngine& e, std::size_t batch) {
  if (batch == 0) batch = e.batch_lanes();
  return batch ? batch : 1;
}

/// Feed `in` to the engine's batch path in caller-capped chunks.
void batched(CipherEngine& e, std::span<const std::uint8_t> in, std::span<std::uint8_t> out,
             bool encrypt, std::size_t batch) {
  const std::size_t chunk_bytes = clamp_batch(e, batch) * aes::kBlock;
  for (std::size_t off = 0; off < in.size(); off += chunk_bytes) {
    const std::size_t len = std::min(chunk_bytes, in.size() - off);
    e.process_batch(in.subspan(off, len), out.subspan(off, len), encrypt);
  }
}

}  // namespace

std::vector<std::uint8_t> ecb_crypt_batched(CipherEngine& e, std::span<const std::uint8_t> data,
                                            bool encrypt, std::size_t batch) {
  if (data.size() % aes::kBlock != 0) throw std::invalid_argument("ecb: partial block");
  std::vector<std::uint8_t> out(data.size());
  batched(e, data, out, encrypt, batch);
  return out;
}

std::vector<std::uint8_t> cbc_decrypt_batched(CipherEngine& e,
                                              std::span<const std::uint8_t, 16> iv,
                                              std::span<const std::uint8_t> data,
                                              std::size_t batch) {
  if (data.size() % aes::kBlock != 0) throw std::invalid_argument("cbc: partial block");
  std::vector<std::uint8_t> out(data.size());
  // All block-cipher inputs are ciphertext blocks: decrypt them as one
  // batch, then undo the chain with XORs.
  batched(e, data, out, /*encrypt=*/false, batch);
  for (std::size_t off = 0; off < data.size(); off += aes::kBlock) {
    const std::uint8_t* chain = off == 0 ? iv.data() : data.data() + (off - aes::kBlock);
    for (std::size_t i = 0; i < aes::kBlock; ++i)
      out[off + i] = static_cast<std::uint8_t>(out[off + i] ^ chain[i]);
  }
  return out;
}

std::vector<std::uint8_t> ctr_crypt_batched(CipherEngine& e,
                                            std::span<const std::uint8_t, 16> initial_counter,
                                            std::span<const std::uint8_t> data,
                                            std::size_t batch) {
  const std::size_t blocks = (data.size() + aes::kBlock - 1) / aes::kBlock;
  std::vector<std::uint8_t> counters(blocks * aes::kBlock);
  for (std::size_t b = 0; b < blocks; ++b) {
    const auto ctr = aes::ctr_counter_at(initial_counter, static_cast<std::uint64_t>(b));
    std::copy(ctr.begin(), ctr.end(),
              counters.begin() + static_cast<std::ptrdiff_t>(b * aes::kBlock));
  }
  std::vector<std::uint8_t> keystream(counters.size());
  batched(e, counters, keystream, /*encrypt=*/true, batch);
  std::vector<std::uint8_t> out(data.size());
  for (std::size_t i = 0; i < data.size(); ++i)
    out[i] = static_cast<std::uint8_t>(data[i] ^ keystream[i]);
  return out;
}

}  // namespace aesip::engine
