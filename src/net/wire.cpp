#include "net/wire.hpp"

#include <array>

namespace aesip::net {

const char* op_name(Op op) noexcept {
  switch (op) {
    case Op::kHello: return "hello";
    case Op::kSetKey: return "set_key";
    case Op::kRekey: return "rekey";
    case Op::kEncBlocks: return "enc_blocks";
    case Op::kDecBlocks: return "dec_blocks";
    case Op::kCtrStream: return "ctr_stream";
    case Op::kStats: return "stats";
    case Op::kDrain: return "drain";
    case Op::kBye: return "bye";
    case Op::kAdminFleetStatus: return "admin_fleet_status";
    case Op::kAdminSwapEngine: return "admin_swap_engine";
    case Op::kAdminQuarantine: return "admin_quarantine";
    case Op::kAdminInject: return "admin_inject";
    case Op::kGossip: return "gossip";
    case Op::kHelloOk: return "hello_ok";
    case Op::kKeyOk: return "key_ok";
    case Op::kResult: return "result";
    case Op::kStatsOk: return "stats_ok";
    case Op::kDrainOk: return "drain_ok";
    case Op::kByeOk: return "bye_ok";
    case Op::kAdminStatusOk: return "admin_status_ok";
    case Op::kAdminOk: return "admin_ok";
    case Op::kRedirect: return "redirect";
    case Op::kGossipOk: return "gossip_ok";
    case Op::kError: return "error";
  }
  return "?";
}

bool is_request_op(Op op) noexcept {
  switch (op) {
    case Op::kHello:
    case Op::kSetKey:
    case Op::kRekey:
    case Op::kEncBlocks:
    case Op::kDecBlocks:
    case Op::kCtrStream:
    case Op::kStats:
    case Op::kDrain:
    case Op::kBye:
    case Op::kAdminFleetStatus:
    case Op::kAdminSwapEngine:
    case Op::kAdminQuarantine:
    case Op::kAdminInject:
    case Op::kGossip:
      return true;
    default:
      return false;
  }
}

const char* error_code_name(ErrorCode c) noexcept {
  switch (c) {
    case ErrorCode::kNone: return "none";
    case ErrorCode::kBadMagic: return "bad_magic";
    case ErrorCode::kBadVersion: return "bad_version";
    case ErrorCode::kBadCrc: return "bad_crc";
    case ErrorCode::kOversized: return "oversized";
    case ErrorCode::kUnknownOpcode: return "unknown_opcode";
    case ErrorCode::kBadPayload: return "bad_payload";
    case ErrorCode::kNoKey: return "no_key";
    case ErrorCode::kNotHello: return "not_hello";
    case ErrorCode::kWindowExceeded: return "window_exceeded";
    case ErrorCode::kDraining: return "draining";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kAdminDisabled: return "admin_disabled";
    case ErrorCode::kBadWorker: return "bad_worker";
    case ErrorCode::kConnectFailed: return "connect_failed";
    case ErrorCode::kNotClustered: return "not_clustered";
  }
  return "?";
}

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    t[i] = c;
  }
  return t;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t seed) noexcept {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = seed ^ 0xffffffffu;
  for (const std::uint8_t b : data) c = table[(c ^ b) & 0xff] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

std::vector<std::uint8_t> encode_frame(const Frame& f) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + f.payload.size() + kTrailerSize);
  put_u32(out, kWireMagic);
  out.push_back(kWireVersion);
  out.push_back(static_cast<std::uint8_t>(f.op));
  put_u16(out, f.flags);
  const std::uint64_t sid = f.session_id;
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(sid >> (8 * i)));
  put_u32(out, f.seq);
  put_u32(out, static_cast<std::uint32_t>(f.payload.size()));
  out.insert(out.end(), f.payload.begin(), f.payload.end());
  put_u32(out, crc32(out));
  return out;
}

FrameDecoder::Status FrameDecoder::next(Frame& out) {
  if (error_ != ErrorCode::kNone) return Status::kBad;
  if (buf_.size() < kHeaderSize) return Status::kNeedMore;

  // The deque is contiguous enough to index; copy the header to a flat
  // scratch so the integer getters (and the CRC) see plain spans.
  std::array<std::uint8_t, kHeaderSize> hdr;
  for (std::size_t i = 0; i < kHeaderSize; ++i) hdr[i] = buf_[i];

  if (get_u32(hdr, 0) != kWireMagic) {
    error_ = ErrorCode::kBadMagic;
    return Status::kBad;
  }
  if (hdr[4] != kWireVersion) {
    error_ = ErrorCode::kBadVersion;
    return Status::kBad;
  }
  const std::uint32_t payload_len = get_u32(hdr, 20);
  // Checked before the payload is buffered: an attacker-controlled length
  // field cannot make the decoder allocate unboundedly.
  if (payload_len > max_payload_) {
    error_ = ErrorCode::kOversized;
    return Status::kBad;
  }
  const std::size_t total = kHeaderSize + payload_len + kTrailerSize;
  if (buf_.size() < total) return Status::kNeedMore;

  std::vector<std::uint8_t> whole(total);
  for (std::size_t i = 0; i < total; ++i) whole[i] = buf_[i];
  const std::uint32_t want =
      get_u32(whole, kHeaderSize + payload_len);
  const std::uint32_t got =
      crc32(std::span<const std::uint8_t>(whole.data(), kHeaderSize + payload_len));
  if (want != got) {
    error_ = ErrorCode::kBadCrc;
    return Status::kBad;
  }

  out.op = static_cast<Op>(whole[5]);
  out.flags = get_u16(whole, 6);
  out.session_id = 0;
  for (int i = 0; i < 8; ++i)
    out.session_id |= static_cast<std::uint64_t>(whole[8 + static_cast<std::size_t>(i)])
                      << (8 * i);
  out.seq = get_u32(whole, 16);
  out.payload.assign(whole.begin() + kHeaderSize,
                     whole.begin() + static_cast<std::ptrdiff_t>(kHeaderSize + payload_len));
  buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(total));
  return Status::kFrame;
}

std::vector<std::uint8_t> encode_error_payload(ErrorCode code, std::string_view message) {
  std::vector<std::uint8_t> p;
  p.reserve(2 + message.size());
  put_u16(p, static_cast<std::uint16_t>(code));
  for (const char ch : message) p.push_back(static_cast<std::uint8_t>(ch));
  return p;
}

void decode_error_payload(std::span<const std::uint8_t> payload, ErrorCode& code,
                          std::string& message) {
  if (payload.size() < 2) {
    code = ErrorCode::kInternal;
    message.clear();
    return;
  }
  code = static_cast<ErrorCode>(get_u16(payload, 0));
  message.assign(payload.begin() + 2, payload.end());
}

}  // namespace aesip::net
