// aesip-wire-v1: the framed binary protocol the service layer speaks.
//
// The paper's Table 1 interface decouples bus I/O from the cipher so a
// block can stream in while the core computes; this is the same idea one
// layer up — a length-prefixed frame protocol that lets many sessions
// stream work at an IP farm without ever blocking on each other. Every
// frame is self-describing and self-checking:
//
//   offset size  field
//   0      4     magic  "AESW" (0x41 0x45 0x53 0x57)
//   4      1     version (kWireVersion = 1)
//   5      1     opcode  (Op)
//   6      2     flags   (little-endian, reserved; must echo in responses)
//   8      8     session_id (LE)
//   16     4     seq     (LE; responses echo the request's seq)
//   20     4     payload_len (LE; bounded by the decoder's max_payload)
//   24     len   payload
//   24+len 4     crc32   (LE, IEEE 802.3, over bytes [0, 24+len))
//
// All integers are little-endian. The CRC covers header and payload, so
// a flipped bit anywhere — including in the length field itself, once
// enough bytes arrive — is caught before a frame is acted on. Frames are
// symmetric: client and server use the same codec (FrameDecoder handles
// arbitrary fragmentation: feed() whatever the transport delivered,
// next() yields complete frames).
//
// Request payloads (client -> server):
//   kHello      empty (future: feature negotiation in flags)
//   kSetKey     16/24/32-byte key (installs the session key; the length
//               selects AES-128/192/256 — anything else is kBadPayload)
//   kRekey      same layout as kSetKey; names the farm's re-key fast path
//   kEncBlocks  [u8 mode: 0=ECB 1=CBC][16B iv][N x 16B data]
//   kDecBlocks  same layout, decrypt direction
//   kCtrStream  [16B initial counter][data, any length >= 1]
//   kStats      empty -> kStatsOk carries the farm stats JSON
//   kDrain      empty -> kDrainOk once every prior frame of the session
//               has been answered (the session-level barrier)
//   kBye        empty -> kByeOk, then the server closes the connection
//
// Admin plane (fleet control; see docs/fleet.md — servers may refuse these
// with kAdminDisabled when not operating as an admin endpoint):
//   kGossip     cluster membership exchange (docs/cluster.md): the payload
//               is the sender's encoded Director view -> kGossipOk carries
//               the receiver's view back. Refused with kNotClustered at a
//               server running without --cluster.
//   kAdminFleetStatus  empty -> kAdminStatusOk carries the fleet JSON
//   kAdminSwapEngine   [u8 worker, 0xFF = all][u8 EngineKind: 0=sw
//                      1=behavioral 2=netlist][optional variant name bytes,
//                      e.g. "pipe5-xtime" (arch::VariantSpec::parse); absent
//                      = the paper's iterative core] -> kAdminOk once the
//                      swap(s) executed on the worker thread(s)
//   kAdminQuarantine   [u8 worker][u8 action: 0=quarantine 1=resume]
//                      -> kAdminOk immediately (routing-table change)
//   kAdminInject       [u8 worker, 0xFF = random][u32 site, 0xFFFFFFFF =
//                      auto-classified corrupting site] -> kAdminOk once
//                      the flip executed
//
// Response payloads (server -> client):
//   kHelloOk    [u32 max_payload][u32 window]  (the flow-control contract:
//               at most `window` unanswered data frames per session)
//   kKeyOk      empty (the key is installed in the session; the farm loads
//               it onto a core lazily, so setup cycles are a farm metric)
//   kResult     the output bytes of the matching request
//   kAdminStatusOk  fleet status JSON (utf-8)
//   kAdminOk    utf-8 summary of the executed admin action
//   kRedirect   utf-8 address of the node that owns this session on the
//               cluster's hash ring; the client reconnects there and
//               replays its unanswered frames (zero lost frames). Sent in
//               place of the normal response when a clustered server is
//               asked about a session it does not own, unless the request
//               set kFlagPinned (control channels: gossip, admin tools).
//   kGossipOk   the receiver's encoded Director view
//   kError      [u16 ErrorCode][utf-8 message]
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace aesip::net {

inline constexpr std::uint32_t kWireMagic = 0x57534541u;  // "AESW" little-endian
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kHeaderSize = 24;
inline constexpr std::size_t kTrailerSize = 4;  // the CRC
inline constexpr std::size_t kDefaultMaxPayload = 1u << 20;

/// Frame flag: pin this session to the node addressed, even on a cluster
/// where the hash ring says another node owns the session id. Control
/// connections (gossip exchanges, `aesip fleet` targeting one node) set
/// it; data sessions leave it clear so kRedirect can route them.
inline constexpr std::uint16_t kFlagPinned = 0x0001;

enum class Op : std::uint8_t {
  // client -> server
  kHello = 0x01,
  kSetKey = 0x02,
  kRekey = 0x03,
  kEncBlocks = 0x04,
  kDecBlocks = 0x05,
  kCtrStream = 0x06,
  kStats = 0x07,
  kDrain = 0x08,
  kBye = 0x09,
  kAdminFleetStatus = 0x0A,
  kAdminSwapEngine = 0x0B,
  kAdminQuarantine = 0x0C,
  kAdminInject = 0x0D,
  kGossip = 0x0E,
  // server -> client
  kHelloOk = 0x81,
  kKeyOk = 0x82,
  kResult = 0x84,
  kStatsOk = 0x87,
  kDrainOk = 0x88,
  kByeOk = 0x89,
  kAdminStatusOk = 0x8A,
  kAdminOk = 0x8B,
  kRedirect = 0x8C,
  kGossipOk = 0x8E,
  kError = 0xEE,
};

const char* op_name(Op op) noexcept;

/// Is `op` one of the opcodes a client may send? (Everything else arriving
/// at the server is kUnknownOpcode, including server->client opcodes.)
bool is_request_op(Op op) noexcept;

enum class ErrorCode : std::uint16_t {
  kNone = 0,
  kBadMagic = 1,
  kBadVersion = 2,
  kBadCrc = 3,
  kOversized = 4,
  kUnknownOpcode = 5,
  kBadPayload = 6,     ///< payload too short / bad key length / not whole blocks
  kNoKey = 7,          ///< data frame before kSetKey
  kNotHello = 8,       ///< first frame of a connection must be kHello
  kWindowExceeded = 9, ///< more unanswered data frames than kHelloOk granted
  kDraining = 10,      ///< server is draining; no new work accepted
  kInternal = 11,
  kAdminDisabled = 12, ///< admin opcode at a server not exposing the admin plane
  kBadWorker = 13,     ///< admin frame names a worker index the farm lacks
  kConnectFailed = 14, ///< client-side: every connect attempt failed (carries
                       ///< the last errno in the message; never on the wire)
  kNotClustered = 15,  ///< kGossip at a server running without --cluster
};

const char* error_code_name(ErrorCode c) noexcept;

struct Frame {
  Op op = Op::kHello;
  std::uint16_t flags = 0;
  std::uint64_t session_id = 0;
  std::uint32_t seq = 0;
  std::vector<std::uint8_t> payload;
};

/// IEEE 802.3 CRC-32 (the zlib polynomial), table-driven.
std::uint32_t crc32(std::span<const std::uint8_t> data,
                    std::uint32_t seed = 0) noexcept;

/// Serialize one frame: header + payload + CRC, ready for the wire.
std::vector<std::uint8_t> encode_frame(const Frame& f);

/// Incremental decoder: feed() bytes in any fragmentation, next() yields
/// complete verified frames. A malformed stream (bad magic/version,
/// oversized length, CRC mismatch) poisons the decoder — the connection
/// is unrecoverable past that point because framing is lost.
class FrameDecoder {
 public:
  enum class Status { kNeedMore, kFrame, kBad };

  explicit FrameDecoder(std::size_t max_payload = kDefaultMaxPayload)
      : max_payload_(max_payload) {}

  void feed(std::span<const std::uint8_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  /// Try to pop one frame. kFrame fills `out`; kNeedMore means feed()
  /// more; kBad means the stream is corrupt (error() says how) and every
  /// later call returns kBad too.
  Status next(Frame& out);

  ErrorCode error() const noexcept { return error_; }
  std::size_t buffered() const noexcept { return buf_.size(); }
  std::size_t max_payload() const noexcept { return max_payload_; }

 private:
  std::size_t max_payload_;
  std::deque<std::uint8_t> buf_;
  ErrorCode error_ = ErrorCode::kNone;
};

// --- payload helpers (the small, fixed sub-layouts above) --------------------

inline void put_u32(std::vector<std::uint8_t>& v, std::uint32_t x) {
  for (int i = 0; i < 4; ++i) v.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
}

inline std::uint32_t get_u32(std::span<const std::uint8_t> v, std::size_t off) {
  std::uint32_t x = 0;
  for (int i = 0; i < 4; ++i) x |= static_cast<std::uint32_t>(v[off + static_cast<std::size_t>(i)]) << (8 * i);
  return x;
}

inline void put_u16(std::vector<std::uint8_t>& v, std::uint16_t x) {
  v.push_back(static_cast<std::uint8_t>(x & 0xff));
  v.push_back(static_cast<std::uint8_t>(x >> 8));
}

inline std::uint16_t get_u16(std::span<const std::uint8_t> v, std::size_t off) {
  return static_cast<std::uint16_t>(v[off] | (static_cast<std::uint16_t>(v[off + 1]) << 8));
}

/// Build a kError payload.
std::vector<std::uint8_t> encode_error_payload(ErrorCode code, std::string_view message);

/// Parse a kError payload (tolerates short/garbled payloads: yields
/// kInternal + empty message rather than throwing).
void decode_error_payload(std::span<const std::uint8_t> payload, ErrorCode& code,
                          std::string& message);

}  // namespace aesip::net
