#include "net/poller.hpp"

#include <algorithm>
#include <thread>

#include <poll.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

namespace aesip::net {

namespace {

/// Normalize a watch list: drop the -1 placeholders, dedupe shared fds.
std::vector<int> normalize(std::vector<int> fds) {
  fds.erase(std::remove_if(fds.begin(), fds.end(), [](int fd) { return fd < 0; }), fds.end());
  std::sort(fds.begin(), fds.end());
  fds.erase(std::unique(fds.begin(), fds.end()), fds.end());
  return fds;
}

#ifdef __linux__

class EpollReadinessSet final : public ReadinessSet {
 public:
  EpollReadinessSet() : epfd_(::epoll_create1(0)) {}

  ~EpollReadinessSet() override {
    if (epfd_ >= 0) ::close(epfd_);
  }

  void rebuild(const std::vector<int>& fds) override {
    if (epfd_ < 0) return;
    std::vector<int> want = normalize(fds);
    if (want == watched_) return;
    // Diff against the previous set: the kernel keeps the interest list,
    // so only the churn costs syscalls.
    std::size_t i = 0, j = 0;
    while (i < watched_.size() || j < want.size()) {
      if (j == want.size() || (i < watched_.size() && watched_[i] < want[j])) {
        ::epoll_ctl(epfd_, EPOLL_CTL_DEL, watched_[i], nullptr);
        ++i;
      } else if (i == watched_.size() || want[j] < watched_[i]) {
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = want[j];
        ::epoll_ctl(epfd_, EPOLL_CTL_ADD, want[j], &ev);
        ++j;
      } else {
        ++i;
        ++j;
      }
    }
    watched_ = std::move(want);
  }

  void wait(std::chrono::milliseconds timeout) override {
    if (epfd_ < 0 || watched_.empty()) {
      std::this_thread::sleep_for(timeout);
      return;
    }
    epoll_event events[16];
    ::epoll_wait(epfd_, events, 16, static_cast<int>(timeout.count()));
  }

  const char* name() const noexcept override { return "epoll"; }

 private:
  int epfd_;
  std::vector<int> watched_;  ///< sorted, deduped, no negatives
};

#endif  // __linux__

class PollReadinessSet final : public ReadinessSet {
 public:
  void rebuild(const std::vector<int>& fds) override { watched_ = normalize(fds); }

  void wait(std::chrono::milliseconds timeout) override {
    if (watched_.empty()) {
      std::this_thread::sleep_for(timeout);
      return;
    }
    std::vector<pollfd> polls;
    polls.reserve(watched_.size());
    for (const int fd : watched_) polls.push_back({fd, POLLIN, 0});
    ::poll(polls.data(), static_cast<nfds_t>(polls.size()),
           static_cast<int>(timeout.count()));
  }

  const char* name() const noexcept override { return "poll"; }

 private:
  std::vector<int> watched_;
};

}  // namespace

std::unique_ptr<ReadinessSet> make_readiness_set() {
#ifdef __linux__
  auto set = std::make_unique<EpollReadinessSet>();
  if (set) return set;
#endif
  return std::make_unique<PollReadinessSet>();
}

}  // namespace aesip::net
