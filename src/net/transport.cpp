// LoopbackTransport: deterministic in-process pipes behind the Conn
// contract. One hub-wide mutex serializes every operation — loopback
// exists for correctness tests and framing benches, not to win a lock
// scalability contest — and one condition variable wakes every waiter on
// any state change (writes, closes, connects). Waiters re-check their own
// predicate, so the broadcast is cheap and race-free.
#include "net/transport.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace aesip::net {

namespace {

/// One direction of a connection: a bounded byte queue.
struct Pipe {
  std::deque<std::uint8_t> buf;
  bool closed = false;  ///< writer hung up; readers drain then see EOF
};

}  // namespace

struct LoopbackHub {
  std::mutex mu;
  std::condition_variable cv;
  std::size_t max_chunk = 1;
  std::size_t pipe_capacity = 1;

  struct Pending {
    std::shared_ptr<Pipe> c2s, s2c;
    std::string peer;
  };
  /// Listening names -> queue of server-side connections not yet accepted.
  std::unordered_map<std::string, std::deque<std::shared_ptr<Pending>>*> listeners;

  void notify_locked_change() { cv.notify_all(); }
};

namespace {

using Hub = LoopbackHub;

class LoopbackConn final : public Conn {
 public:
  LoopbackConn(std::shared_ptr<Hub> hub, std::shared_ptr<Pipe> rd, std::shared_ptr<Pipe> wr,
               std::string peer)
      : hub_(std::move(hub)), rd_(std::move(rd)), wr_(std::move(wr)), peer_(std::move(peer)) {}

  ~LoopbackConn() override { close(); }

  IoResult read_some(std::span<std::uint8_t> buf) override {
    std::lock_guard lk(hub_->mu);
    if (rd_->buf.empty()) {
      if (rd_->closed || closed_) return {0, IoStatus::kEof};
      return {0, IoStatus::kWouldBlock};
    }
    const std::size_t n = std::min({buf.size(), rd_->buf.size(), hub_->max_chunk});
    for (std::size_t i = 0; i < n; ++i) {
      buf[i] = rd_->buf.front();
      rd_->buf.pop_front();
    }
    hub_->notify_locked_change();  // writer may be waiting for capacity
    return {n, IoStatus::kOk};
  }

  IoResult write_some(std::span<const std::uint8_t> buf) override {
    std::lock_guard lk(hub_->mu);
    if (closed_ || wr_->closed) return {0, IoStatus::kError};
    const std::size_t room =
        wr_->buf.size() >= hub_->pipe_capacity ? 0 : hub_->pipe_capacity - wr_->buf.size();
    const std::size_t n = std::min({buf.size(), room, hub_->max_chunk});
    if (n == 0) return {0, IoStatus::kWouldBlock};
    wr_->buf.insert(wr_->buf.end(), buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(n));
    hub_->notify_locked_change();
    return {n, IoStatus::kOk};
  }

  bool wait_readable(std::chrono::milliseconds timeout) override {
    std::unique_lock lk(hub_->mu);
    return hub_->cv.wait_for(lk, timeout,
                             [&] { return !rd_->buf.empty() || rd_->closed || closed_; });
  }

  bool wait_writable(std::chrono::milliseconds timeout) override {
    std::unique_lock lk(hub_->mu);
    return hub_->cv.wait_for(lk, timeout, [&] {
      return closed_ || wr_->closed || wr_->buf.size() < hub_->pipe_capacity;
    });
  }

  void close() override {
    std::lock_guard lk(hub_->mu);
    if (closed_) return;
    closed_ = true;
    wr_->closed = true;  // our outgoing direction ends; peer drains then EOFs
    rd_->closed = true;  // and we stop reading
    hub_->notify_locked_change();
  }

  std::string peer() const override { return peer_; }

 private:
  std::shared_ptr<Hub> hub_;
  std::shared_ptr<Pipe> rd_, wr_;
  std::string peer_;
  bool closed_ = false;
};

class LoopbackListener final : public Listener {
 public:
  LoopbackListener(std::shared_ptr<Hub> hub, std::string name)
      : hub_(std::move(hub)), name_(std::move(name)) {
    std::lock_guard lk(hub_->mu);
    if (hub_->listeners.count(name_))
      throw std::runtime_error("loopback: '" + name_ + "' already listening");
    hub_->listeners[name_] = &pending_;
  }

  ~LoopbackListener() override { close(); }

  std::unique_ptr<Conn> accept() override {
    std::lock_guard lk(hub_->mu);
    if (pending_.empty()) return nullptr;
    auto p = std::move(pending_.front());
    pending_.pop_front();
    // Server reads the client->server pipe and writes server->client.
    return std::make_unique<LoopbackConn>(hub_, p->c2s, p->s2c, p->peer);
  }

  void wait(std::chrono::milliseconds timeout) override {
    // Any hub activity (new pending conn, bytes written toward us, a peer
    // close) broadcasts on the one cv; the server loop re-scans either way.
    std::unique_lock lk(hub_->mu);
    if (!pending_.empty()) return;
    hub_->cv.wait_for(lk, timeout);
  }

  std::string address() const override { return name_; }

  void close() override {
    std::lock_guard lk(hub_->mu);
    if (closed_) return;
    closed_ = true;
    hub_->listeners.erase(name_);
    pending_.clear();
    hub_->notify_locked_change();
  }

 private:
  std::shared_ptr<Hub> hub_;
  std::string name_;
  std::deque<std::shared_ptr<Hub::Pending>> pending_;
  bool closed_ = false;
};

}  // namespace

LoopbackTransport::LoopbackTransport(std::size_t max_chunk, std::size_t pipe_capacity)
    : hub_(std::make_shared<Hub>()) {
  hub_->max_chunk = max_chunk ? max_chunk : 1;
  hub_->pipe_capacity = pipe_capacity ? pipe_capacity : 1;
}

LoopbackTransport::~LoopbackTransport() = default;

std::unique_ptr<Listener> LoopbackTransport::listen(const std::string& address) {
  return std::make_unique<LoopbackListener>(hub_, address);
}

std::unique_ptr<Conn> LoopbackTransport::connect(const std::string& address) {
  std::lock_guard lk(hub_->mu);
  const auto it = hub_->listeners.find(address);
  if (it == hub_->listeners.end())
    throw std::runtime_error("loopback: connection refused: nobody listening on '" + address +
                             "'");
  auto p = std::make_shared<Hub::Pending>();
  p->c2s = std::make_shared<Pipe>();
  p->s2c = std::make_shared<Pipe>();
  p->peer = "loopback-client";
  it->second->push_back(p);
  hub_->notify_locked_change();
  // Client reads server->client and writes client->server.
  return std::make_unique<LoopbackConn>(hub_, p->s2c, p->c2s, address);
}

}  // namespace aesip::net
