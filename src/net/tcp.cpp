// TcpTransport: the Conn/Listener/Transport contract over non-blocking
// POSIX sockets. Addresses are "host:port"; listening on port 0 picks an
// ephemeral port and address() reports the real one (how tests avoid
// hard-coding ports). Waiting is poll(2): a Conn polls its own fd, and a
// Listener polls its accept fd plus every connection it accepted that is
// still alive — the aggregate wakeup the server's event loop needs.
#include "net/transport.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace aesip::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("tcp: " + what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    throw_errno("fcntl(O_NONBLOCK)");
}

/// "host:port" -> sockaddr_in. Host may be empty ("listen on any") or a
/// dotted quad; name resolution is out of scope for this layer.
sockaddr_in parse_addr(const std::string& address, bool for_listen) {
  const auto colon = address.rfind(':');
  if (colon == std::string::npos)
    throw std::runtime_error("tcp: address must be host:port, got '" + address + "'");
  const std::string host = address.substr(0, colon);
  const int port = std::stoi(address.substr(colon + 1));
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<std::uint16_t>(port));
  if (host.empty() || host == "*") {
    sa.sin_addr.s_addr = for_listen ? htonl(INADDR_ANY) : htonl(INADDR_LOOPBACK);
  } else if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
    throw std::runtime_error("tcp: cannot parse host '" + host + "' (IPv4 dotted quad)");
  }
  return sa;
}

std::string addr_to_string(const sockaddr_in& sa) {
  char host[INET_ADDRSTRLEN] = {};
  ::inet_ntop(AF_INET, &sa.sin_addr, host, sizeof host);
  return std::string(host) + ":" + std::to_string(ntohs(sa.sin_port));
}

class TcpListener;

/// Accepted fds register with their listener so Listener::wait() can poll
/// them; a Conn may outlive the listener, so registration is via a
/// shared registry rather than a back-pointer.
struct FdRegistry {
  std::mutex mu;
  std::vector<int> fds;

  void add(int fd) {
    std::lock_guard lk(mu);
    fds.push_back(fd);
  }
  void remove(int fd) {
    std::lock_guard lk(mu);
    fds.erase(std::remove(fds.begin(), fds.end(), fd), fds.end());
  }
  std::vector<int> snapshot() {
    std::lock_guard lk(mu);
    return fds;
  }
};

class TcpConn final : public Conn {
 public:
  TcpConn(int fd, std::string peer, std::shared_ptr<FdRegistry> registry)
      : fd_(fd), peer_(std::move(peer)), registry_(std::move(registry)) {
    if (registry_) registry_->add(fd_);
  }

  ~TcpConn() override { close(); }

  IoResult read_some(std::span<std::uint8_t> buf) override {
    if (fd_ < 0) return {0, IoStatus::kEof};
    const ssize_t n = ::recv(fd_, buf.data(), buf.size(), 0);
    if (n > 0) return {static_cast<std::size_t>(n), IoStatus::kOk};
    if (n == 0) return {0, IoStatus::kEof};
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
      return {0, IoStatus::kWouldBlock};
    return {0, IoStatus::kError};
  }

  IoResult write_some(std::span<const std::uint8_t> buf) override {
    if (fd_ < 0) return {0, IoStatus::kError};
    const ssize_t n = ::send(fd_, buf.data(), buf.size(), MSG_NOSIGNAL);
    if (n >= 0) return {static_cast<std::size_t>(n), IoStatus::kOk};
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
      return {0, IoStatus::kWouldBlock};
    return {0, IoStatus::kError};
  }

  bool wait_readable(std::chrono::milliseconds timeout) override {
    return poll_one(POLLIN, timeout);
  }
  bool wait_writable(std::chrono::milliseconds timeout) override {
    return poll_one(POLLOUT, timeout);
  }

  void close() override {
    if (fd_ < 0) return;
    if (registry_) registry_->remove(fd_);
    ::close(fd_);
    fd_ = -1;
  }

  std::string peer() const override { return peer_; }

  int native_handle() const noexcept override { return fd_; }

 private:
  bool poll_one(short events, std::chrono::milliseconds timeout) {
    if (fd_ < 0) return true;  // closed counts as "readable" (EOF) either way
    pollfd p{fd_, events, 0};
    const int r = ::poll(&p, 1, static_cast<int>(timeout.count()));
    return r > 0;
  }

  int fd_;
  std::string peer_;
  std::shared_ptr<FdRegistry> registry_;
};

class TcpListener final : public Listener {
 public:
  explicit TcpListener(const std::string& address)
      : registry_(std::make_shared<FdRegistry>()) {
    const sockaddr_in want = parse_addr(address, /*for_listen=*/true);
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw_errno("socket");
    const int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&want), sizeof want) < 0) {
      ::close(fd_);
      throw_errno("bind " + address);
    }
    if (::listen(fd_, 64) < 0) {
      ::close(fd_);
      throw_errno("listen " + address);
    }
    set_nonblocking(fd_);
    sockaddr_in got{};
    socklen_t len = sizeof got;
    ::getsockname(fd_, reinterpret_cast<sockaddr*>(&got), &len);
    if (got.sin_addr.s_addr == htonl(INADDR_ANY)) got.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    address_ = addr_to_string(got);
  }

  ~TcpListener() override { close(); }

  std::unique_ptr<Conn> accept() override {
    if (fd_ < 0) return nullptr;
    sockaddr_in peer{};
    socklen_t len = sizeof peer;
    const int cfd = ::accept(fd_, reinterpret_cast<sockaddr*>(&peer), &len);
    if (cfd < 0) return nullptr;  // EAGAIN and friends: nothing pending
    set_nonblocking(cfd);
    const int one = 1;
    ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return std::make_unique<TcpConn>(cfd, addr_to_string(peer), registry_);
  }

  void wait(std::chrono::milliseconds timeout) override {
    if (fd_ < 0) return;
    std::vector<pollfd> polls;
    polls.push_back({fd_, POLLIN, 0});
    for (const int fd : registry_->snapshot()) polls.push_back({fd, POLLIN, 0});
    ::poll(polls.data(), static_cast<nfds_t>(polls.size()),
           static_cast<int>(timeout.count()));
  }

  std::string address() const override { return address_; }

  void close() override {
    if (fd_ < 0) return;
    ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
  std::string address_;
  std::shared_ptr<FdRegistry> registry_;
};

class TcpTransport final : public Transport {
 public:
  std::unique_ptr<Listener> listen(const std::string& address) override {
    return std::make_unique<TcpListener>(address);
  }

  std::unique_ptr<Conn> connect(const std::string& address) override {
    const sockaddr_in sa = parse_addr(address, /*for_listen=*/false);
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket");
    // Blocking connect (localhost handshakes are instant; remote failures
    // surface as the exception the Client's retry loop expects), then flip
    // to non-blocking for the I/O contract.
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) < 0) {
      ::close(fd);
      throw_errno("connect " + address);
    }
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return std::make_unique<TcpConn>(fd, address, nullptr);
  }

  const char* name() const noexcept override { return "tcp"; }
};

}  // namespace

std::unique_ptr<Transport> make_tcp_transport() { return std::make_unique<TcpTransport>(); }

}  // namespace aesip::net
