// ReadinessSet: bulk read-readiness waiting for the server's event loops.
//
// A worker loop owns a set of connections; when none of them made progress
// it must sleep until bytes arrive on *any* of them. poll(2) rebuilds the
// kernel's interest list on every call — O(conns) per wakeup — which is the
// single-threaded server's hidden scaling wall. epoll keeps the interest
// list in the kernel across calls, so a wakeup costs O(ready), not
// O(watched). This interface wraps both behind one shape:
//
//   set.rebuild(fds);   // only when the conn set changed (cheap to diff)
//   set.wait(timeout);  // sleep until any fd is readable, or timeout
//
// Wakeups are advisory, exactly like Listener::wait — callers re-scan their
// connections, they never trust the wakeup. Duplicate and negative handles
// are tolerated: duplicates are deduped (UDP conns share one socket) and
// negatives are skipped (loopback conns have no fd — a loop holding only
// those degrades to plain sleeping, which the 1 ms poll interval bounds).
//
// make_readiness_set() returns the epoll implementation on Linux and the
// portable poll(2) one elsewhere; name() says which, and BENCH_net's epoll
// section records it.
#pragma once

#include <chrono>
#include <memory>
#include <vector>

namespace aesip::net {

class ReadinessSet {
 public:
  virtual ~ReadinessSet() = default;

  /// Replace the watched set. Order is irrelevant; duplicates and -1 are
  /// tolerated and ignored.
  virtual void rebuild(const std::vector<int>& fds) = 0;

  /// Sleep until any watched fd is readable (or has an error/EOF pending)
  /// or `timeout` elapses. With an empty watch set this is a plain sleep.
  virtual void wait(std::chrono::milliseconds timeout) = 0;

  virtual const char* name() const noexcept = 0;
};

std::unique_ptr<ReadinessSet> make_readiness_set();

}  // namespace aesip::net
