#include "net/netchan.hpp"

#include "net/wire.hpp"  // crc32, put/get helpers

namespace aesip::net::netchan {

namespace {

void put_u64(std::vector<std::uint8_t>& v, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) v.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
}

std::uint64_t get_u64(std::span<const std::uint8_t> v, std::size_t off) {
  std::uint64_t x = 0;
  for (int i = 0; i < 8; ++i)
    x |= static_cast<std::uint64_t>(v[off + static_cast<std::size_t>(i)]) << (8 * i);
  return x;
}

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

std::vector<std::uint8_t> encode_packet(const Packet& p) {
  std::vector<std::uint8_t> out;
  out.reserve(kPacketOverhead + p.payload.size());
  put_u32(out, kMagic);
  out.push_back(static_cast<std::uint8_t>(p.type));
  out.push_back(0);  // flags, reserved
  put_u16(out, static_cast<std::uint16_t>(p.payload.size()));
  put_u32(out, p.conv);
  put_u32(out, p.seq);
  put_u32(out, p.ack);
  put_u32(out, p.ack_bits);
  put_u64(out, p.cookie);
  out.insert(out.end(), p.payload.begin(), p.payload.end());
  put_u32(out, crc32(out));
  return out;
}

bool decode_packet(std::span<const std::uint8_t> d, Packet& out) {
  if (d.size() < kPacketOverhead) return false;
  if (get_u32(d, 0) != kMagic) return false;
  const std::size_t len = get_u16(d, 6);
  if (d.size() != kPacketOverhead + len) return false;
  if (get_u32(d, kPacketHeader + len) != crc32(d.subspan(0, kPacketHeader + len)))
    return false;
  const std::uint8_t ty = d[4];
  if (ty < 1 || ty > 7) return false;
  out.type = static_cast<PacketType>(ty);
  out.conv = get_u32(d, 8);
  out.seq = get_u32(d, 12);
  out.ack = get_u32(d, 16);
  out.ack_bits = get_u32(d, 20);
  out.cookie = get_u64(d, 24);
  out.payload.assign(d.begin() + kPacketHeader,
                     d.begin() + static_cast<std::ptrdiff_t>(kPacketHeader + len));
  return true;
}

std::uint64_t make_cookie(std::string_view addr, std::uint64_t secret,
                          std::uint64_t epoch) noexcept {
  // Keyed-hash sandwich over (secret, addr, epoch, secret): enough mixing
  // that neither addr nor epoch can be solved for without the secret.
  std::uint64_t h = splitmix64(secret ^ fnv1a64(addr));
  h = splitmix64(h ^ epoch);
  return splitmix64(h ^ secret);
}

bool cookie_valid(std::uint64_t cookie, std::string_view addr, std::uint64_t secret,
                  std::uint64_t epoch_now) noexcept {
  if (cookie == make_cookie(addr, secret, epoch_now)) return true;
  return epoch_now > 0 && cookie == make_cookie(addr, secret, epoch_now - 1);
}

Channel::Channel(ChannelConfig cfg) : cfg_(cfg) {
  if (cfg_.mtu_payload == 0) cfg_.mtu_payload = 1;
  if (cfg_.window == 0) cfg_.window = 1;
}

std::size_t Channel::send(std::span<const std::uint8_t> bytes) {
  std::size_t accepted = 0;
  while (accepted < bytes.size() && tx_.size() < cfg_.window) {
    const std::size_t n = std::min(cfg_.mtu_payload, bytes.size() - accepted);
    Segment seg;
    seg.seq = tx_next_++;
    seg.bytes.assign(bytes.begin() + static_cast<std::ptrdiff_t>(accepted),
                     bytes.begin() + static_cast<std::ptrdiff_t>(accepted + n));
    tx_.push_back(std::move(seg));
    accepted += n;
  }
  return accepted;
}

std::size_t Channel::receive(std::span<std::uint8_t> out) {
  const std::size_t n = std::min(out.size(), rx_ready_.size());
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = rx_ready_.front();
    rx_ready_.pop_front();
  }
  return n;
}

std::uint32_t Channel::ack_bits() const {
  // Bit i: segment rx_next_ + i already arrived (it is in the stash).
  // rx_next_ itself is by definition missing, so bit positions index from
  // the first gap — the selective window that unblocks retransmission of
  // exactly the lost segment.
  std::uint32_t bits = 0;
  for (int i = 0; i < 32; ++i)
    if (stash_.count(rx_next_ + static_cast<std::uint32_t>(i))) bits |= 1u << i;
  return bits;
}

void Channel::apply_acks(const Packet& p) {
  for (auto it = tx_.begin(); it != tx_.end();) {
    const std::int32_t past_cum = static_cast<std::int32_t>(it->seq - p.ack);
    bool acked = past_cum <= 0;
    if (!acked && p.ack_bits) {
      const std::uint32_t d = it->seq - (p.ack + 1);
      acked = d < 32 && ((p.ack_bits >> d) & 1u);
    }
    it = acked ? tx_.erase(it) : ++it;
  }
}

void Channel::on_packet(const Packet& p, clock::time_point) {
  apply_acks(p);
  if (p.type == PacketType::kBye) {
    peer_closed_ = true;
    return;
  }
  if (p.type != PacketType::kData) return;

  const std::int32_t d = static_cast<std::int32_t>(p.seq - rx_next_);
  if (d < 0) {
    // Already delivered: our ack was lost. Re-ack so the peer stops.
    ++stats_.dups;
  } else if (d == 0) {
    ++stats_.segs_received;
    rx_ready_.insert(rx_ready_.end(), p.payload.begin(), p.payload.end());
    ++rx_next_;
    // Drain everything the gap was holding back.
    for (auto it = stash_.find(rx_next_); it != stash_.end(); it = stash_.find(rx_next_)) {
      rx_ready_.insert(rx_ready_.end(), it->second.begin(), it->second.end());
      stash_.erase(it);
      ++rx_next_;
    }
  } else if (static_cast<std::uint32_t>(d) < cfg_.window * 4 &&
             stash_.size() < cfg_.recv_stash_max) {
    if (stash_.emplace(p.seq, p.payload).second) {
      ++stats_.segs_received;
      ++stats_.out_of_order;
    } else {
      ++stats_.dups;
    }
  }
  // else: past the stash bound; drop, the peer retransmits.
  ack_pending_ = true;
}

bool Channel::poll_outgoing(Packet& out, clock::time_point now) {
  if (dead_) return false;
  for (auto& seg : tx_) {
    if (seg.sends != 0 && now - seg.last_send < cfg_.rto) continue;
    if (seg.sends > cfg_.max_resend) {
      dead_ = true;  // the peer is gone; stop pretending
      return false;
    }
    out = Packet{};
    out.type = PacketType::kData;
    out.seq = seg.seq;
    out.ack = cum_ack();
    out.ack_bits = ack_bits();
    out.payload = seg.bytes;
    seg.sends == 0 ? ++stats_.segs_sent : ++stats_.segs_resent;
    ++seg.sends;
    seg.last_send = now;
    ack_pending_ = false;  // the data packet carried the ack
    return true;
  }
  if (ack_pending_) {
    out = Packet{};
    out.type = PacketType::kAck;
    out.ack = cum_ack();
    out.ack_bits = ack_bits();
    ack_pending_ = false;
    ++stats_.acks_sent;
    return true;
  }
  return false;
}

std::optional<Channel::clock::time_point> Channel::next_deadline() const {
  if (dead_) return std::nullopt;
  std::optional<clock::time_point> earliest;
  for (const auto& seg : tx_) {
    if (seg.sends == 0) return clock::time_point::min();  // sendable right now
    const auto due = seg.last_send + cfg_.rto;
    if (!earliest || due < *earliest) earliest = due;
  }
  if (ack_pending_) return clock::time_point::min();
  return earliest;
}

}  // namespace aesip::net::netchan
