// aesip-wire-v1 client: one connection, one session, pipelined requests.
//
// connect() retries with exponential backoff (servers come up while
// clients start — the loadgen races `aesip serve` by design). The retry
// budget is doubly bounded: at most `connect_attempts` tries AND at most
// `connect_wait_max` total sleeping; exhausting either throws
// WireError(kConnectFailed) whose message carries the last underlying
// failure (including the transport's strerror text). Then the kHello
// handshake learns the server's flow-control contract (window, max
// payload). Data calls come in two shapes:
//
//   * blocking: enc_blocks()/dec_blocks()/ctr_stream() submit and wait —
//     the simple one-outstanding-request client;
//   * pipelined: submit_*() returns a seq immediately (blocking only when
//     the window is full), wait(seq) collects that response whenever it
//     lands. Responses may arrive out of order; the client matches them
//     by seq, so callers can keep `window` frames in flight — which is
//     what it takes to keep a multi-worker farm busy over one connection.
//
// Cluster redirects: a sharded server answers kRedirect (payload = the
// owning node's address) instead of serving a session it does not own.
// With `follow_redirects` the client transparently reconnects there,
// replays the handshake, re-installs the session key, and re-sends every
// frame not yet answered (it keeps a copy of each request until its
// response arrives) — callers just see their wait() return, possibly a
// little later. Hops are bounded by `max_redirects` per operation; a
// `pinned` client advertises kFlagPinned at kHello and is never
// redirected (gossip and node-targeted tooling use this).
//
// A kError response surfaces as WireError (carrying the ErrorCode); any
// transport failure or malformed server frame throws std::runtime_error.
// Client is NOT thread-safe: one thread per Client (the loadgen runs one
// per session).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "farm/session.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"

namespace aesip::net {

struct ClientConfig {
  int connect_attempts = 8;
  std::chrono::milliseconds backoff_initial{5};   ///< doubles per retry
  std::chrono::milliseconds backoff_max{500};
  std::chrono::milliseconds connect_wait_max{2000};  ///< cap on total backoff sleep
  std::chrono::milliseconds io_timeout{10000};    ///< per blocking wait
  bool follow_redirects = true;  ///< chase kRedirect to the owning node
  int max_redirects = 4;         ///< hop bound per operation
  bool pinned = false;           ///< kFlagPinned on kHello: never redirected
};

/// A kError frame from the server, as an exception.
class WireError : public std::runtime_error {
 public:
  WireError(ErrorCode code, const std::string& msg)
      : std::runtime_error(std::string(error_code_name(code)) + ": " + msg), code_(code) {}
  ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

class Client {
 public:
  /// Connect (with retry/backoff) and run the kHello handshake.
  Client(Transport& transport, const std::string& address, std::uint64_t session_id,
         ClientConfig cfg = {});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  std::uint64_t session_id() const noexcept { return session_id_; }
  /// Flow-control contract learned from kHelloOk.
  std::uint32_t window() const noexcept { return window_; }
  std::uint32_t max_payload() const noexcept { return max_payload_; }
  /// Data frames submitted and not yet answered.
  std::size_t in_flight() const noexcept { return in_flight_; }
  /// kRedirect hops followed over this client's lifetime.
  std::uint64_t redirects() const noexcept { return redirects_; }
  /// Address currently connected to (changes when a redirect is followed).
  const std::string& server_address() const noexcept { return address_; }

  /// Install the session key (kSetKey, waits for kKeyOk). 16/24/32 bytes
  /// select AES-128/192/256; any other length throws std::invalid_argument
  /// before touching the wire.
  void set_key(std::span<const std::uint8_t> key);
  /// Same wire cost as set_key; names the farm's re-key fast path.
  void rekey(std::span<const std::uint8_t> key);

  // --- blocking data calls -------------------------------------------------
  std::vector<std::uint8_t> enc_blocks(bool cbc, const farm::Key128& iv,
                                       std::vector<std::uint8_t> data) {
    return wait(submit_enc(cbc, iv, std::move(data)));
  }
  std::vector<std::uint8_t> dec_blocks(bool cbc, const farm::Key128& iv,
                                       std::vector<std::uint8_t> data) {
    return wait(submit_dec(cbc, iv, std::move(data)));
  }
  std::vector<std::uint8_t> ctr_stream(const farm::Key128& counter,
                                       std::vector<std::uint8_t> data) {
    return wait(submit_ctr(counter, std::move(data)));
  }

  // --- pipelined data calls ------------------------------------------------
  /// Submit without waiting for the response. Blocks only while the
  /// window is full (pumping responses makes room). Returns the seq to
  /// pass to wait().
  std::uint32_t submit_enc(bool cbc, const farm::Key128& iv, std::vector<std::uint8_t> data);
  std::uint32_t submit_dec(bool cbc, const farm::Key128& iv, std::vector<std::uint8_t> data);
  std::uint32_t submit_ctr(const farm::Key128& counter, std::vector<std::uint8_t> data);

  /// Collect the kResult for `seq`, pumping I/O until it arrives.
  std::vector<std::uint8_t> wait(std::uint32_t seq);

  /// Session barrier: kDrain, answered only after every prior frame.
  void drain();
  /// The farm stats JSON (kStats -> kStatsOk payload).
  std::string stats_json();
  /// Trade membership views with a clustered server (kGossip ->
  /// kGossipOk); returns the server's encoded view. Throws
  /// WireError(kNotClustered) against a standalone server.
  std::vector<std::uint8_t> gossip(std::vector<std::uint8_t> view);
  /// Polite goodbye (kBye -> kByeOk); the connection is unusable after.
  void bye();

  // --- fleet admin plane (requires a server with ServerConfig::admin) ------
  /// Fleet health snapshot JSON (kAdminFleetStatus -> kAdminStatusOk).
  std::string fleet_status_json();
  /// Hot-swap one worker (or all when `worker` is -1) to engine `kind`
  /// (0=sw 1=behavioral 2=netlist); blocks until the swap(s) executed.
  /// `variant` optionally names a round-engine variant ("pipe5-xtime",
  /// "unroll-lut", ... — arch::VariantSpec::parse spellings); empty keeps
  /// the paper's iterative core. Returns the server's summary.
  std::string fleet_swap(int worker, std::uint8_t kind, const std::string& variant = "");
  /// Quarantine (resume=false) or resume a worker.
  std::string fleet_quarantine(int worker, bool resume);
  /// Inject an SEU into a live engine: `worker` -1 = server-chosen,
  /// `site` 0xFFFFFFFF = auto-classified corrupting site.
  std::string fleet_inject(int worker = -1, std::uint32_t site = 0xffffffffu);

 private:
  std::uint32_t submit_data(Op op, std::vector<std::uint8_t> payload);
  void send(Op op, std::uint32_t seq, std::vector<std::uint8_t> payload);
  /// One non-blocking write pass over the queued bytes.
  void flush_once();
  /// Flush writes and read until `stop()` says done (or timeout/EOF).
  template <typename Stop>
  void pump(Stop&& stop);
  /// Wait for the control ack `ack` to seq `seq`; returns its payload.
  std::vector<std::uint8_t> wait_control(Op ack, std::uint32_t seq);
  void on_frame(Frame&& f);
  /// Reconnect at `target`, re-handshake, re-key, replay the unanswered.
  void do_redirect(const std::string& target);
  void send_hello();
  /// Blocking mini-exchange used only during redirects (pump would recurse).
  Frame read_one_frame(std::chrono::steady_clock::time_point deadline);

  ClientConfig cfg_;
  Transport* transport_;
  std::string address_;  ///< where we are connected now
  std::unique_ptr<Conn> conn_;
  FrameDecoder decoder_;
  std::uint64_t session_id_;
  std::uint32_t next_seq_ = 1;
  std::uint32_t window_ = 1;
  std::uint32_t max_payload_ = 0;
  std::size_t in_flight_ = 0;
  std::uint64_t redirects_ = 0;
  std::vector<std::uint8_t> outbuf_;
  std::size_t out_off_ = 0;
  std::set<std::uint32_t> data_seqs_;         ///< submitted data frames awaiting response
  std::map<std::uint32_t, Frame> completed_;  ///< responses not yet collected
  std::map<std::uint32_t, Frame> pending_;    ///< sent, unanswered — the replay buffer
  std::vector<std::uint8_t> key_;             ///< last installed key, for re-keying
  bool redirect_pending_ = false;
  std::string redirect_target_;
};

}  // namespace aesip::net
