// UdpTransport: aesip-netchan-v1 over real UDP sockets, behind the same
// Conn/Listener/Transport contract as TCP — the layers above stay
// transport-blind, and the FrameCodec byte stream rides the reliable
// ordered channel netchan.cpp implements.
//
// Topology: one socket per listener, demuxed by source address into
// per-peer channels (a server serves every UDP session off one fd — which
// is also why Conn::native_handle may repeat and ReadinessSet dedupes);
// one connected socket per client conn. All listener-side state lives in
// a shared UdpHub under one mutex: the event loop(s) call pump() from
// every entry point, which drains the socket, routes packets, answers
// handshakes statelessly, and flushes due retransmits/acks.
//
// The handshake never allocates before the cookie round-trip proves the
// source address is real (netchan.hpp documents the exchange). Closed
// conns with unacked data linger as zombies for UdpConfig::linger so the
// tail of a response survives one more retransmit round.
#include "net/netchan.hpp"
#include "net/transport.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace aesip::net {

namespace {

using netchan::Packet;
using netchan::PacketType;
using clock_t_ = std::chrono::steady_clock;

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("udp: " + what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    throw_errno("fcntl(O_NONBLOCK)");
}

sockaddr_in parse_addr(const std::string& address, bool for_listen) {
  const auto colon = address.rfind(':');
  if (colon == std::string::npos)
    throw std::runtime_error("udp: address must be host:port, got '" + address + "'");
  const std::string host = address.substr(0, colon);
  const int port = std::stoi(address.substr(colon + 1));
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<std::uint16_t>(port));
  if (host.empty() || host == "*") {
    sa.sin_addr.s_addr = for_listen ? htonl(INADDR_ANY) : htonl(INADDR_LOOPBACK);
  } else if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
    throw std::runtime_error("udp: cannot parse host '" + host + "' (IPv4 dotted quad)");
  }
  return sa;
}

std::string addr_to_string(const sockaddr_in& sa) {
  char host[INET_ADDRSTRLEN] = {};
  ::inet_ntop(AF_INET, &sa.sin_addr, host, sizeof host);
  return std::string(host) + ":" + std::to_string(ntohs(sa.sin_port));
}

netchan::ChannelConfig channel_config(const UdpConfig& cfg) {
  netchan::ChannelConfig c;
  c.mtu_payload = cfg.mtu > netchan::kPacketOverhead + 1
                      ? cfg.mtu - netchan::kPacketOverhead
                      : 1;
  c.window = cfg.window;
  c.rto = cfg.rto;
  c.max_resend = cfg.max_resend;
  return c;
}

std::uint64_t epoch_now(const UdpConfig& cfg) {
  const auto t = clock_t_::now().time_since_epoch();
  const auto period = cfg.cookie_epoch.count() > 0 ? cfg.cookie_epoch
                                                   : std::chrono::milliseconds(1);
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(t).count() /
      period.count());
}

/// The seeded packet mangler (UdpChaos): drop/dup/reorder applied at the
/// sendto boundary, deterministically per seed. Reordering holds one
/// datagram back and emits it after the next send — retransmission
/// guarantees a next send, so nothing is held forever.
class Mangler {
 public:
  explicit Mangler(UdpChaos chaos, std::uint32_t salt)
      : chaos_(chaos), rng_(chaos.seed ^ salt) {}

  template <typename SendFn>
  void send(std::vector<std::uint8_t> bytes, const sockaddr_in& to, SendFn&& raw) {
    if (chaos_.seed == 0) {
      raw(bytes, to);
      return;
    }
    if (roll() < chaos_.drop) return;
    if (holding_) {
      raw(bytes, to);
      raw(held_, held_to_);  // the older datagram lands second: reordered
      holding_ = false;
      return;
    }
    if (roll() < chaos_.reorder) {
      held_ = std::move(bytes);
      held_to_ = to;
      holding_ = true;
      return;
    }
    raw(bytes, to);
    if (roll() < chaos_.dup) raw(bytes, to);
  }

 private:
  double roll() { return std::uniform_real_distribution<double>(0.0, 1.0)(rng_); }

  UdpChaos chaos_;
  std::mt19937 rng_;
  std::vector<std::uint8_t> held_;
  sockaddr_in held_to_{};
  bool holding_ = false;
};

// --- server side -------------------------------------------------------------

struct UdpPeer {
  sockaddr_in sa{};
  std::string addr_str;
  std::uint32_t conv = 0;
  netchan::Channel channel;
  bool accepted = false;      ///< handed out by Listener::accept
  bool local_closed = false;  ///< conn closed; zombie until idle or deadline
  bool bye_sent = false;
  clock_t_::time_point close_deadline{};

  UdpPeer(const sockaddr_in& a, std::uint32_t c, const netchan::ChannelConfig& cc)
      : sa(a), addr_str(addr_to_string(a)), conv(c), channel(cc) {}
};

/// Everything behind one listening socket. Conns and the listener share it;
/// every public op locks, pumps, acts, flushes.
struct UdpHub {
  std::mutex mu;
  UdpConfig cfg;
  int fd = -1;
  bool closed = false;
  std::uint32_t next_conv = 1;
  std::map<std::string, std::shared_ptr<UdpPeer>> peers;  ///< by source address
  std::deque<std::shared_ptr<UdpPeer>> pending_accepts;
  Mangler mangler;
  clock_t_::time_point last_flush_scan{};

  explicit UdpHub(UdpConfig c) : cfg(c), mangler(c.chaos, 0x5eed0000u) {}

  ~UdpHub() {
    if (fd >= 0) ::close(fd);
  }

  void raw_send(const std::vector<std::uint8_t>& bytes, const sockaddr_in& to) {
    if (fd < 0) return;
    ::sendto(fd, bytes.data(), bytes.size(), 0, reinterpret_cast<const sockaddr*>(&to),
             sizeof to);  // best effort; loss is netchan's business
  }

  void send_packet(const Packet& p, const sockaddr_in& to) {
    mangler.send(netchan::encode_packet(p), to,
                 [this](const std::vector<std::uint8_t>& b, const sockaddr_in& t) {
                   raw_send(b, t);
                 });
  }

  void flush_peer(const std::shared_ptr<UdpPeer>& p, clock_t_::time_point now) {
    Packet out;
    while (p->channel.poll_outgoing(out, now)) {
      out.conv = p->conv;
      send_packet(out, p->sa);
    }
  }

  /// Drain the socket, route/answer packets, flush due output. Callers
  /// hold mu. Bounded: the recv loop ends at EAGAIN, and the full flush
  /// scan runs at most once per millisecond so per-conn entry points stay
  /// O(1) in the peer count.
  void pump(clock_t_::time_point now) {
    if (fd < 0) return;
    std::uint8_t buf[65536];
    for (int round = 0; round < 256; ++round) {
      sockaddr_in from{};
      socklen_t fromlen = sizeof from;
      const ssize_t n = ::recvfrom(fd, buf, sizeof buf, 0,
                                   reinterpret_cast<sockaddr*>(&from), &fromlen);
      if (n < 0) break;  // EAGAIN and friends: drained
      Packet p;
      if (!decode_packet(std::span<const std::uint8_t>(buf, static_cast<std::size_t>(n)), p))
        continue;  // mangled or foreign datagram: drop before any state
      handle_packet(p, from, now);
    }
    if (now - last_flush_scan >= std::chrono::milliseconds(1)) {
      last_flush_scan = now;
      for (auto it = peers.begin(); it != peers.end();) {
        flush_peer(it->second, now);
        it = maybe_reap(it, now);
      }
    }
  }

  void handle_packet(const Packet& p, const sockaddr_in& from, clock_t_::time_point now) {
    const std::string key = addr_to_string(from);
    switch (p.type) {
      case PacketType::kChallengeReq: {
        // Stateless: the reply is computed, not stored. A spoofed source
        // costs this hash and one datagram to the spoofed address.
        Packet ch;
        ch.type = PacketType::kChallenge;
        ch.cookie = netchan::make_cookie(key, cfg.secret, epoch_now(cfg));
        send_packet(ch, from);
        return;
      }
      case PacketType::kConnect: {
        if (!netchan::cookie_valid(p.cookie, key, cfg.secret, epoch_now(cfg)))
          return;  // stale or forged cookie: silently drop, still stateless
        auto it = peers.find(key);
        if (it == peers.end()) {
          auto peer = std::make_shared<UdpPeer>(from, next_conv++, channel_config(cfg));
          it = peers.emplace(key, peer).first;
          pending_accepts.push_back(peer);
        }
        // Idempotent: a lost kAccept means the client re-sends kConnect.
        Packet acc;
        acc.type = PacketType::kAccept;
        acc.conv = it->second->conv;
        acc.cookie = p.cookie;
        send_packet(acc, from);
        return;
      }
      case PacketType::kData:
      case PacketType::kAck:
      case PacketType::kBye: {
        const auto it = peers.find(key);
        if (it == peers.end() || it->second->conv != p.conv) return;  // no state, no cost
        it->second->channel.on_packet(p, now);
        flush_peer(it->second, now);  // acks out promptly
        return;
      }
      default:
        return;
    }
  }

  /// Reap closed peers once their channel went idle (everything acked) or
  /// the linger deadline passed; a kBye tells the peer it is over.
  std::map<std::string, std::shared_ptr<UdpPeer>>::iterator maybe_reap(
      std::map<std::string, std::shared_ptr<UdpPeer>>::iterator it,
      clock_t_::time_point now) {
    UdpPeer& p = *it->second;
    if (!p.local_closed) return ++it;
    if (!p.channel.idle() && !p.channel.dead() && now < p.close_deadline) return ++it;
    if (!p.bye_sent) {
      Packet bye;
      bye.type = PacketType::kBye;
      bye.conv = p.conv;
      send_packet(bye, p.sa);
      p.bye_sent = true;
    }
    return peers.erase(it);
  }

  /// Cap a wait so the earliest retransmit deadline is honored.
  std::chrono::milliseconds cap_wait(std::chrono::milliseconds want,
                                     clock_t_::time_point now) {
    auto cap = want;
    for (const auto& [key, p] : peers) {
      (void)key;
      const auto due = p->channel.next_deadline();
      if (!due) continue;
      if (*due <= now) return std::chrono::milliseconds(0);
      cap = std::min(cap, std::chrono::duration_cast<std::chrono::milliseconds>(*due - now) +
                              std::chrono::milliseconds(1));
    }
    return std::max(cap, std::chrono::milliseconds(0));
  }
};

class UdpServerConn final : public Conn {
 public:
  UdpServerConn(std::shared_ptr<UdpHub> hub, std::shared_ptr<UdpPeer> peer)
      : hub_(std::move(hub)), peer_(std::move(peer)) {}

  ~UdpServerConn() override { close(); }

  IoResult read_some(std::span<std::uint8_t> buf) override {
    std::lock_guard lk(hub_->mu);
    hub_->pump(clock_t_::now());
    const std::size_t n = peer_->channel.receive(buf);
    if (n > 0) return {n, IoStatus::kOk};
    if (peer_->channel.dead()) return {0, IoStatus::kError};
    if (peer_->channel.peer_closed() && peer_->channel.recv_drained())
      return {0, IoStatus::kEof};
    return {0, IoStatus::kWouldBlock};
  }

  IoResult write_some(std::span<const std::uint8_t> buf) override {
    std::lock_guard lk(hub_->mu);
    const auto now = clock_t_::now();
    if (peer_->channel.dead() || peer_->local_closed || hub_->closed)
      return {0, IoStatus::kError};
    const std::size_t n = peer_->channel.send(buf);
    hub_->flush_peer(peer_, now);
    if (n > 0) return {n, IoStatus::kOk};
    return {0, IoStatus::kWouldBlock};
  }

  bool wait_readable(std::chrono::milliseconds timeout) override {
    return wait_common(timeout);
  }
  bool wait_writable(std::chrono::milliseconds timeout) override {
    return wait_common(timeout);
  }

  void close() override {
    std::lock_guard lk(hub_->mu);
    if (peer_->local_closed) return;
    const auto now = clock_t_::now();
    peer_->local_closed = true;
    peer_->close_deadline = now + hub_->cfg.linger;
    // Reap immediately when the channel is already quiet; otherwise the
    // hub's pump retransmits the tail until acked or the linger expires.
    auto it = hub_->peers.find(peer_->addr_str);
    if (it != hub_->peers.end() && it->second == peer_) hub_->maybe_reap(it, now);
  }

  std::string peer() const override { return peer_->addr_str; }

  int native_handle() const noexcept override { return hub_->fd; }

 private:
  bool wait_common(std::chrono::milliseconds timeout) {
    std::chrono::milliseconds capped;
    {
      std::lock_guard lk(hub_->mu);
      const auto now = clock_t_::now();
      hub_->pump(now);
      if (!peer_->channel.recv_drained() || peer_->channel.dead() ||
          peer_->channel.peer_closed())
        return true;
      capped = hub_->cap_wait(timeout, now);
      if (hub_->fd < 0) return false;
    }
    if (capped.count() > 0) {
      pollfd p{hub_->fd, POLLIN, 0};
      ::poll(&p, 1, static_cast<int>(capped.count()));
    }
    std::lock_guard lk(hub_->mu);
    hub_->pump(clock_t_::now());
    return !peer_->channel.recv_drained();
  }

  std::shared_ptr<UdpHub> hub_;
  std::shared_ptr<UdpPeer> peer_;
};

class UdpListener final : public Listener {
 public:
  UdpListener(const std::string& address, UdpConfig cfg)
      : hub_(std::make_shared<UdpHub>(cfg)) {
    const sockaddr_in want = parse_addr(address, /*for_listen=*/true);
    hub_->fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (hub_->fd < 0) throw_errno("socket");
    if (::bind(hub_->fd, reinterpret_cast<const sockaddr*>(&want), sizeof want) < 0) {
      ::close(hub_->fd);
      hub_->fd = -1;
      throw_errno("bind " + address);
    }
    set_nonblocking(hub_->fd);
    sockaddr_in got{};
    socklen_t len = sizeof got;
    ::getsockname(hub_->fd, reinterpret_cast<sockaddr*>(&got), &len);
    if (got.sin_addr.s_addr == htonl(INADDR_ANY)) got.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    address_ = addr_to_string(got);
  }

  ~UdpListener() override { close(); }

  std::unique_ptr<Conn> accept() override {
    std::lock_guard lk(hub_->mu);
    hub_->pump(clock_t_::now());
    if (hub_->pending_accepts.empty()) return nullptr;
    auto peer = std::move(hub_->pending_accepts.front());
    hub_->pending_accepts.pop_front();
    peer->accepted = true;
    return std::make_unique<UdpServerConn>(hub_, std::move(peer));
  }

  void wait(std::chrono::milliseconds timeout) override {
    std::chrono::milliseconds capped;
    int fd;
    {
      std::lock_guard lk(hub_->mu);
      const auto now = clock_t_::now();
      hub_->pump(now);
      if (!hub_->pending_accepts.empty()) return;
      capped = hub_->cap_wait(timeout, now);
      fd = hub_->fd;
    }
    if (fd < 0) return;
    if (capped.count() > 0) {
      pollfd p{fd, POLLIN, 0};
      ::poll(&p, 1, static_cast<int>(capped.count()));
    }
    std::lock_guard lk(hub_->mu);
    hub_->pump(clock_t_::now());
  }

  std::string address() const override { return address_; }

  void close() override {
    std::lock_guard lk(hub_->mu);
    if (hub_->closed) return;
    hub_->closed = true;
    if (hub_->fd >= 0) {
      ::close(hub_->fd);
      hub_->fd = -1;
    }
    hub_->pending_accepts.clear();
  }

 private:
  std::shared_ptr<UdpHub> hub_;
  std::string address_;
};

// --- client side -------------------------------------------------------------

class UdpClientConn final : public Conn {
 public:
  UdpClientConn(int fd, std::string peer, std::uint32_t conv, UdpConfig cfg)
      : fd_(fd), peer_(std::move(peer)), conv_(conv), cfg_(cfg),
        channel_(channel_config(cfg)), mangler_(cfg.chaos, conv ^ 0xc11e0000u) {}

  ~UdpClientConn() override { close(); }

  IoResult read_some(std::span<std::uint8_t> buf) override {
    pump();
    const std::size_t n = channel_.receive(buf);
    if (n > 0) return {n, IoStatus::kOk};
    if (channel_.dead() || fd_ < 0) return {0, IoStatus::kError};
    if (channel_.peer_closed() && channel_.recv_drained()) return {0, IoStatus::kEof};
    return {0, IoStatus::kWouldBlock};
  }

  IoResult write_some(std::span<const std::uint8_t> buf) override {
    if (fd_ < 0 || channel_.dead() || channel_.peer_closed()) return {0, IoStatus::kError};
    const std::size_t n = channel_.send(buf);
    pump();
    if (n > 0) return {n, IoStatus::kOk};
    return {0, IoStatus::kWouldBlock};
  }

  bool wait_readable(std::chrono::milliseconds timeout) override {
    return wait_common(timeout);
  }
  bool wait_writable(std::chrono::milliseconds timeout) override {
    return wait_common(timeout);
  }

  void close() override {
    if (fd_ < 0) return;
    // Bounded linger: give the tail one more chance to be acked, then a
    // best-effort kBye so the server reaps the peer promptly.
    const auto deadline = clock_t_::now() + std::min(cfg_.linger, std::chrono::milliseconds(100));
    while (!channel_.idle() && !channel_.dead() && clock_t_::now() < deadline) {
      pump();
      pollfd p{fd_, POLLIN, 0};
      ::poll(&p, 1, 1);
    }
    Packet bye;
    bye.type = PacketType::kBye;
    bye.conv = conv_;
    bye.ack = 0;
    send_packet(bye);
    ::close(fd_);
    fd_ = -1;
  }

  std::string peer() const override { return peer_; }

  int native_handle() const noexcept override { return fd_; }

 private:
  void send_packet(const Packet& p) {
    mangler_.send(netchan::encode_packet(p), sockaddr_in{},
                  [this](const std::vector<std::uint8_t>& b, const sockaddr_in&) {
                    if (fd_ >= 0) ::send(fd_, b.data(), b.size(), 0);
                  });
  }

  /// Drain the socket into the channel, flush due output. Single-owner
  /// like every Conn, so no locking.
  void pump() {
    if (fd_ < 0) return;
    const auto now = clock_t_::now();
    std::uint8_t buf[65536];
    for (int round = 0; round < 256; ++round) {
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n < 0) break;
      Packet p;
      if (!decode_packet(std::span<const std::uint8_t>(buf, static_cast<std::size_t>(n)), p))
        continue;
      if (p.type == PacketType::kAccept) continue;  // duplicate accept: handshake done
      if (p.conv != conv_) continue;
      channel_.on_packet(p, now);
    }
    Packet out;
    while (channel_.poll_outgoing(out, now)) {
      out.conv = conv_;
      send_packet(out);
    }
  }

  bool wait_common(std::chrono::milliseconds timeout) {
    pump();
    if (!channel_.recv_drained() || channel_.dead() || channel_.peer_closed()) return true;
    auto cap = timeout;
    const auto due = channel_.next_deadline();
    const auto now = clock_t_::now();
    if (due) {
      if (*due <= now)
        cap = std::chrono::milliseconds(0);
      else
        cap = std::min(cap, std::chrono::duration_cast<std::chrono::milliseconds>(*due - now) +
                                std::chrono::milliseconds(1));
    }
    if (cap.count() > 0 && fd_ >= 0) {
      pollfd p{fd_, POLLIN, 0};
      ::poll(&p, 1, static_cast<int>(cap.count()));
    }
    pump();
    return !channel_.recv_drained();
  }

  int fd_;
  std::string peer_;
  std::uint32_t conv_;
  UdpConfig cfg_;
  netchan::Channel channel_;
  Mangler mangler_;
};

class UdpTransport final : public Transport {
 public:
  explicit UdpTransport(UdpConfig cfg) : cfg_(cfg) {
    if (cfg_.secret == 0) {
      std::random_device rd;
      cfg_.secret = (static_cast<std::uint64_t>(rd()) << 32) | rd();
    }
    if (cfg_.mtu <= netchan::kPacketOverhead) cfg_.mtu = netchan::kPacketOverhead + 1;
  }

  std::unique_ptr<Listener> listen(const std::string& address) override {
    return std::make_unique<UdpListener>(address, cfg_);
  }

  std::unique_ptr<Conn> connect(const std::string& address) override {
    const sockaddr_in sa = parse_addr(address, /*for_listen=*/false);
    const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd < 0) throw_errno("socket");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) < 0) {
      ::close(fd);
      throw_errno("connect " + address);
    }
    set_nonblocking(fd);

    // The challenge handshake, synchronously with bounded retries — the
    // Client's backoff ladder wraps the whole attempt like a TCP connect.
    const auto deadline = clock_t_::now() + cfg_.handshake_timeout;
    const auto resend_every = std::max<clock_t_::duration>(cfg_.rto, std::chrono::milliseconds(10));
    std::uint64_t cookie = 0;
    bool have_cookie = false;
    bool send_now = true;  // a time_point::min() sentinel would overflow now-last_send
    auto last_send = clock_t_::now();
    std::uint8_t buf[2048];
    for (;;) {
      const auto now = clock_t_::now();
      if (now >= deadline) {
        ::close(fd);
        throw std::runtime_error("udp: connect " + address +
                                 ": handshake timed out (no server?)");
      }
      if (send_now || now - last_send >= resend_every) {
        send_now = false;
        Packet req;
        req.type = have_cookie ? PacketType::kConnect : PacketType::kChallengeReq;
        req.cookie = cookie;
        const auto bytes = netchan::encode_packet(req);
        ::send(fd, bytes.data(), bytes.size(), 0);
        last_send = now;
      }
      pollfd p{fd, POLLIN, 0};
      ::poll(&p, 1, 5);
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n < 0) continue;
      Packet resp;
      if (!decode_packet(std::span<const std::uint8_t>(buf, static_cast<std::size_t>(n)), resp))
        continue;
      if (resp.type == PacketType::kChallenge) {
        cookie = resp.cookie;
        have_cookie = true;
        send_now = true;  // kConnect goes out on the next loop pass
      } else if (resp.type == PacketType::kAccept && have_cookie) {
        return std::make_unique<UdpClientConn>(fd, address, resp.conv, cfg_);
      }
    }
  }

  const char* name() const noexcept override { return "udp"; }

 private:
  UdpConfig cfg_;
};

}  // namespace

std::unique_ptr<Transport> make_udp_transport(UdpConfig cfg) {
  return std::make_unique<UdpTransport>(cfg);
}

}  // namespace aesip::net
