// Transport: the byte-stream abstraction under the wire protocol.
//
// Two implementations with one contract so every layer above (FrameCodec,
// Server, Client, loadgen, bench) is transport-blind:
//
//  * TcpTransport       — real non-blocking POSIX sockets over localhost or
//                         the network; waiting is poll(2) on the fds.
//  * UdpTransport       — aesip-netchan-v1 (src/net/netchan.hpp): a reliable
//                         ordered byte stream over UDP datagrams, so the
//                         FrameCodec above it works verbatim. Fragmentation/
//                         reassembly, seq/ack retransmit, and a stateless
//                         challenge handshake live below this interface.
//  * LoopbackTransport  — a deterministic in-process byte pipe for CI and
//                         benches: no kernel, no ports, no flakes, and a
//                         configurable per-call chunk cap that *forces* the
//                         short-read/short-write paths protocol tests need.
//
// The contract is deliberately minimal and non-blocking: read_some /
// write_some never block (kWouldBlock instead), and the wait_* calls are
// how callers sleep until progress is possible. A Listener additionally
// aggregates waiting over everything it accepted, which is exactly the
// shape a poll-based server loop wants.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>

namespace aesip::net {

enum class IoStatus {
  kOk,          ///< n bytes transferred (n >= 1)
  kWouldBlock,  ///< nothing transferable right now; try after wait_*
  kEof,         ///< peer closed cleanly (reads only)
  kError,       ///< connection is dead (reset, broken pipe, ...)
};

struct IoResult {
  std::size_t n = 0;
  IoStatus status = IoStatus::kOk;
};

/// One established byte-stream connection. Single-owner: not thread-safe
/// (the server's event loop or the client own theirs exclusively).
class Conn {
 public:
  virtual ~Conn() = default;

  virtual IoResult read_some(std::span<std::uint8_t> buf) = 0;
  virtual IoResult write_some(std::span<const std::uint8_t> buf) = 0;

  /// Sleep until readable / EOF (true) or timeout (false).
  virtual bool wait_readable(std::chrono::milliseconds timeout) = 0;
  /// Sleep until writable (true) or timeout (false).
  virtual bool wait_writable(std::chrono::milliseconds timeout) = 0;

  /// Half-close is not modeled: close() tears the connection down. The
  /// peer sees kEof after draining whatever was already written.
  virtual void close() = 0;
  virtual std::string peer() const = 0;

  /// The OS readiness handle (socket fd) behind this connection, or -1
  /// when there is none (loopback pipes). A ReadinessSet (poller.hpp) can
  /// watch handles in bulk — the epoll server's worker loops do; several
  /// conns may share one handle (UDP conns demuxed off one socket), so
  /// watchers must dedupe.
  virtual int native_handle() const noexcept { return -1; }
};

class Listener {
 public:
  virtual ~Listener() = default;

  /// Non-blocking: the next pending connection, or nullptr.
  virtual std::unique_ptr<Conn> accept() = 0;

  /// Sleep until a connection is pending, any connection this listener
  /// accepted has activity (readable bytes, EOF, writability after a
  /// stall), or `timeout` elapses. Spurious wakeups are allowed — callers
  /// re-scan, they don't trust the wakeup.
  virtual void wait(std::chrono::milliseconds timeout) = 0;

  /// The resolved address ("127.0.0.1:49152" after listening on port 0).
  virtual std::string address() const = 0;
  virtual void close() = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Bind and listen. TCP addresses are "host:port" (port 0 = ephemeral);
  /// loopback addresses are arbitrary names. Throws on failure.
  virtual std::unique_ptr<Listener> listen(const std::string& address) = 0;

  /// Connect or throw std::runtime_error (nobody listening, refused...).
  /// The Client wraps this in its retry/backoff loop.
  virtual std::unique_ptr<Conn> connect(const std::string& address) = 0;

  virtual const char* name() const noexcept = 0;
};

/// Deterministic in-process transport. All connections live inside this
/// object; server and client must share the instance (it is thread-safe —
/// that is the point). `max_chunk` caps the bytes any single read_some /
/// write_some moves, so a small value exercises partial-I/O handling;
/// `pipe_capacity` bounds each direction's buffer (writes beyond it see
/// kWouldBlock — backpressure, like a full socket buffer).
struct LoopbackHub;  // the shared in-process "network" (transport.cpp)

class LoopbackTransport final : public Transport {
 public:
  explicit LoopbackTransport(std::size_t max_chunk = 1u << 16,
                             std::size_t pipe_capacity = 1u << 20);
  ~LoopbackTransport() override;

  std::unique_ptr<Listener> listen(const std::string& address) override;
  std::unique_ptr<Conn> connect(const std::string& address) override;
  const char* name() const noexcept override { return "loopback"; }

 private:
  std::shared_ptr<LoopbackHub> hub_;
};

/// Non-blocking TCP sockets; addresses are "host:port". Stateless factory
/// (every listener/conn owns its fd), safe to share across threads.
std::unique_ptr<Transport> make_tcp_transport();

/// Seeded packet mangler applied to every datagram a UdpTransport sends —
/// the chaos harness netchan reliability tests drive. seed == 0 disables
/// mangling entirely (the production configuration). Probabilities are in
/// [0,1) and independent per datagram.
struct UdpChaos {
  std::uint32_t seed = 0;
  double drop = 0;     ///< datagram silently discarded
  double dup = 0;      ///< datagram sent twice
  double reorder = 0;  ///< datagram held back and swapped with the next one
};

/// aesip-netchan-v1 tuning. Defaults serve production traffic; tests
/// shrink the timers to exercise retransmission quickly.
struct UdpConfig {
  std::size_t mtu = 1200;       ///< max datagram size incl. netchan header
  std::size_t window = 64;      ///< max unacked outgoing segments per conn
  std::chrono::milliseconds rto{25};          ///< retransmit timeout
  std::size_t max_resend = 400;               ///< per-segment resend cap -> conn dead
  std::uint64_t secret = 0;     ///< cookie HMAC secret; 0 = randomized
  std::chrono::milliseconds cookie_epoch{8000};    ///< cookie rotation period
  std::chrono::milliseconds handshake_timeout{2000};
  std::chrono::milliseconds linger{250};      ///< retransmit window after close()
  UdpChaos chaos;
};

/// UDP datagrams under the same byte-stream contract, via aesip-netchan-v1
/// (fragmentation/reassembly, stateless challenge handshake, seq/ack
/// reliability — docs/cluster.md). Addresses are "host:port" like TCP.
std::unique_ptr<Transport> make_udp_transport(UdpConfig cfg = {});

}  // namespace aesip::net
