#include "net/client.hpp"

#include <algorithm>
#include <thread>

namespace aesip::net {

namespace {

/// Retry/backoff connect, doubly bounded: `connect_attempts` tries, and
/// `connect_wait_max` of total sleeping. Exhausting either throws
/// WireError(kConnectFailed) carrying the last underlying failure text
/// (which for TCP includes strerror(errno) — the caller learns *why*).
std::unique_ptr<Conn> connect_with_backoff(Transport& transport, const std::string& address,
                                           const ClientConfig& cfg) {
  auto backoff = cfg.backoff_initial;
  const auto give_up = std::chrono::steady_clock::now() + cfg.connect_wait_max;
  const int attempts = std::max(1, cfg.connect_attempts);
  std::string last_err;
  for (int attempt = 1;; ++attempt) {
    try {
      return transport.connect(address);
    } catch (const std::exception& e) {
      last_err = e.what();
    }
    if (attempt >= attempts || std::chrono::steady_clock::now() + backoff > give_up)
      throw WireError(ErrorCode::kConnectFailed,
                      "connect " + address + " failed after " + std::to_string(attempt) +
                          " attempt(s): " + last_err);
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, cfg.backoff_max);
  }
}

}  // namespace

Client::Client(Transport& transport, const std::string& address, std::uint64_t session_id,
               ClientConfig cfg)
    : cfg_(cfg), transport_(&transport), address_(address),
      conn_(connect_with_backoff(transport, address, cfg)), session_id_(session_id) {
  send_hello();
  const auto p = wait_control(Op::kHelloOk, 0);
  if (p.size() < 8) throw std::runtime_error("net: short kHelloOk payload");
  max_payload_ = get_u32(p, 0);
  window_ = std::max<std::uint32_t>(1, get_u32(p, 4));
}

Client::~Client() {
  if (conn_) conn_->close();
}

void Client::send_hello() {
  Frame f;
  f.op = Op::kHello;
  f.flags = cfg_.pinned ? kFlagPinned : 0;
  f.session_id = session_id_;
  f.seq = 0;
  const auto bytes = encode_frame(f);
  outbuf_.insert(outbuf_.end(), bytes.begin(), bytes.end());
}

void Client::set_key(std::span<const std::uint8_t> key) {
  if (key.size() != 16 && key.size() != 24 && key.size() != 32)
    throw std::invalid_argument("net: key must be 16, 24 or 32 bytes");
  key_.assign(key.begin(), key.end());  // remembered for redirect re-keying
  const std::uint32_t seq = next_seq_++;
  send(Op::kSetKey, seq, std::vector<std::uint8_t>(key.begin(), key.end()));
  wait_control(Op::kKeyOk, seq);
}

void Client::rekey(std::span<const std::uint8_t> key) {
  if (key.size() != 16 && key.size() != 24 && key.size() != 32)
    throw std::invalid_argument("net: key must be 16, 24 or 32 bytes");
  key_.assign(key.begin(), key.end());
  const std::uint32_t seq = next_seq_++;
  send(Op::kRekey, seq, std::vector<std::uint8_t>(key.begin(), key.end()));
  wait_control(Op::kKeyOk, seq);
}

std::uint32_t Client::submit_enc(bool cbc, const farm::Key128& iv,
                                 std::vector<std::uint8_t> data) {
  std::vector<std::uint8_t> p;
  p.reserve(17 + data.size());
  p.push_back(cbc ? 1 : 0);
  p.insert(p.end(), iv.begin(), iv.end());
  p.insert(p.end(), data.begin(), data.end());
  return submit_data(Op::kEncBlocks, std::move(p));
}

std::uint32_t Client::submit_dec(bool cbc, const farm::Key128& iv,
                                 std::vector<std::uint8_t> data) {
  std::vector<std::uint8_t> p;
  p.reserve(17 + data.size());
  p.push_back(cbc ? 1 : 0);
  p.insert(p.end(), iv.begin(), iv.end());
  p.insert(p.end(), data.begin(), data.end());
  return submit_data(Op::kDecBlocks, std::move(p));
}

std::uint32_t Client::submit_ctr(const farm::Key128& counter, std::vector<std::uint8_t> data) {
  std::vector<std::uint8_t> p;
  p.reserve(16 + data.size());
  p.insert(p.end(), counter.begin(), counter.end());
  p.insert(p.end(), data.begin(), data.end());
  return submit_data(Op::kCtrStream, std::move(p));
}

std::uint32_t Client::submit_data(Op op, std::vector<std::uint8_t> payload) {
  if (max_payload_ && payload.size() > max_payload_)
    throw std::invalid_argument("net: payload exceeds server max_payload");
  // Honor the window: pump until a response frees a slot.
  pump([&] { return in_flight_ < window_; });
  const std::uint32_t seq = next_seq_++;
  send(op, seq, std::move(payload));
  ++in_flight_;
  data_seqs_.insert(seq);
  flush_once();  // the frame just queued should head for the server now
  return seq;
}

void Client::flush_once() {
  while (out_off_ < outbuf_.size()) {
    const IoResult r = conn_->write_some(
        std::span<const std::uint8_t>(outbuf_.data() + out_off_, outbuf_.size() - out_off_));
    if (r.status == IoStatus::kOk) {
      out_off_ += r.n;
    } else if (r.status == IoStatus::kWouldBlock) {
      return;  // transport backpressure; the next pump retries
    } else {
      throw std::runtime_error("net: connection lost while writing");
    }
  }
  outbuf_.clear();
  out_off_ = 0;
}

std::vector<std::uint8_t> Client::wait(std::uint32_t seq) {
  pump([&] { return completed_.count(seq) != 0; });
  Frame f = std::move(completed_.at(seq));
  completed_.erase(seq);
  if (f.op == Op::kError) {
    ErrorCode code;
    std::string msg;
    decode_error_payload(f.payload, code, msg);
    throw WireError(code, msg);
  }
  if (f.op != Op::kResult) throw std::runtime_error("net: unexpected response to data frame");
  return std::move(f.payload);
}

void Client::drain() {
  const std::uint32_t seq = next_seq_++;
  send(Op::kDrain, seq, {});
  wait_control(Op::kDrainOk, seq);
}

std::string Client::stats_json() {
  const std::uint32_t seq = next_seq_++;
  send(Op::kStats, seq, {});
  const auto p = wait_control(Op::kStatsOk, seq);
  return std::string(p.begin(), p.end());
}

std::vector<std::uint8_t> Client::gossip(std::vector<std::uint8_t> view) {
  const std::uint32_t seq = next_seq_++;
  send(Op::kGossip, seq, std::move(view));
  return wait_control(Op::kGossipOk, seq);
}

std::string Client::fleet_status_json() {
  const std::uint32_t seq = next_seq_++;
  send(Op::kAdminFleetStatus, seq, {});
  const auto p = wait_control(Op::kAdminStatusOk, seq);
  return std::string(p.begin(), p.end());
}

std::string Client::fleet_swap(int worker, std::uint8_t kind, const std::string& variant) {
  const std::uint32_t seq = next_seq_++;
  std::vector<std::uint8_t> payload;
  payload.push_back(worker < 0 ? 0xff : static_cast<std::uint8_t>(worker));
  payload.push_back(kind);
  payload.insert(payload.end(), variant.begin(), variant.end());
  send(Op::kAdminSwapEngine, seq, std::move(payload));
  const auto p = wait_control(Op::kAdminOk, seq);
  return std::string(p.begin(), p.end());
}

std::string Client::fleet_quarantine(int worker, bool resume) {
  const std::uint32_t seq = next_seq_++;
  std::vector<std::uint8_t> payload;
  payload.push_back(static_cast<std::uint8_t>(worker));
  payload.push_back(resume ? 1 : 0);
  send(Op::kAdminQuarantine, seq, std::move(payload));
  const auto p = wait_control(Op::kAdminOk, seq);
  return std::string(p.begin(), p.end());
}

std::string Client::fleet_inject(int worker, std::uint32_t site) {
  const std::uint32_t seq = next_seq_++;
  std::vector<std::uint8_t> payload;
  payload.push_back(worker < 0 ? 0xff : static_cast<std::uint8_t>(worker));
  put_u32(payload, site);
  send(Op::kAdminInject, seq, std::move(payload));
  const auto p = wait_control(Op::kAdminOk, seq);
  return std::string(p.begin(), p.end());
}

void Client::bye() {
  const std::uint32_t seq = next_seq_++;
  send(Op::kBye, seq, {});
  wait_control(Op::kByeOk, seq);
  conn_->close();
}

void Client::send(Op op, std::uint32_t seq, std::vector<std::uint8_t> payload) {
  Frame f;
  f.op = op;
  f.session_id = session_id_;
  f.seq = seq;
  f.payload = std::move(payload);
  const auto bytes = encode_frame(f);
  outbuf_.insert(outbuf_.end(), bytes.begin(), bytes.end());
  // Every request is remembered until its response arrives: the replay
  // buffer that makes a mid-stream redirect lossless.
  pending_[seq] = std::move(f);
}

void Client::on_frame(Frame&& f) {
  if (f.op == Op::kRedirect) {
    // The session's owner is elsewhere. Keep the unanswered frames in
    // pending_ — the redirect pass replays them at the owner.
    redirect_target_.assign(f.payload.begin(), f.payload.end());
    redirect_pending_ = true;
    return;
  }
  // Responses index by seq; an unmatched seq is a server bug we surface
  // at the next wait rather than dropping silently. Only responses to
  // data frames occupy window slots.
  pending_.erase(f.seq);
  if (data_seqs_.erase(f.seq) && in_flight_ > 0) --in_flight_;
  completed_[f.seq] = std::move(f);
}

/// Read exactly one frame, blocking up to `deadline`. Used only by the
/// redirect path, where re-entering pump() would recurse.
Frame Client::read_one_frame(std::chrono::steady_clock::time_point deadline) {
  std::uint8_t buf[4096];
  Frame f;
  for (;;) {
    flush_once();
    const auto st = decoder_.next(f);
    if (st == FrameDecoder::Status::kFrame) return f;
    if (st == FrameDecoder::Status::kBad)
      throw std::runtime_error(std::string("net: malformed server frame: ") +
                               error_code_name(decoder_.error()));
    const IoResult r = conn_->read_some(buf);
    if (r.status == IoStatus::kOk) {
      decoder_.feed(std::span<const std::uint8_t>(buf, r.n));
    } else if (r.status == IoStatus::kWouldBlock) {
      if (std::chrono::steady_clock::now() >= deadline)
        throw std::runtime_error("net: timed out during redirect handshake");
      conn_->wait_readable(std::chrono::milliseconds(10));
    } else if (r.status == IoStatus::kEof) {
      throw std::runtime_error("net: server closed the connection during redirect");
    } else {
      throw std::runtime_error("net: connection lost during redirect");
    }
  }
}

/// Follow a kRedirect: reconnect at the owner, re-HELLO, re-install the
/// session key, then replay every frame still awaiting a response with its
/// original seq — the in-flight bookkeeping (data_seqs_, in_flight_) is
/// untouched, so callers' wait(seq) just completes against the new node.
void Client::do_redirect(const std::string& first_target) {
  std::string target = first_target;
  const auto deadline = std::chrono::steady_clock::now() + cfg_.io_timeout;
  for (int hop = 1;; ++hop) {
    if (hop > cfg_.max_redirects)
      throw WireError(ErrorCode::kConnectFailed,
                      "redirect hop limit (" + std::to_string(cfg_.max_redirects) +
                          ") exceeded chasing session owner");
    ++redirects_;
    conn_->close();
    conn_ = connect_with_backoff(*transport_, target, cfg_);
    address_ = target;
    decoder_ = FrameDecoder{};
    outbuf_.clear();
    out_off_ = 0;

    send_hello();
    Frame h = read_one_frame(deadline);
    if (h.op == Op::kRedirect) {  // membership moved again mid-chase
      target.assign(h.payload.begin(), h.payload.end());
      continue;
    }
    if (h.op == Op::kError) {
      ErrorCode code;
      std::string msg;
      decode_error_payload(h.payload, code, msg);
      throw WireError(code, msg);
    }
    if (h.op != Op::kHelloOk || h.payload.size() < 8)
      throw std::runtime_error("net: bad HELLO_OK during redirect");
    max_payload_ = get_u32(h.payload, 0);
    window_ = std::max<std::uint32_t>(1, get_u32(h.payload, 4));

    if (!key_.empty()) {
      const std::uint32_t kseq = next_seq_++;
      send(Op::kSetKey, kseq, key_);
      Frame k = read_one_frame(deadline);
      pending_.erase(kseq);
      if (k.op == Op::kRedirect) {
        target.assign(k.payload.begin(), k.payload.end());
        continue;
      }
      if (k.op != Op::kKeyOk)
        throw std::runtime_error("net: key re-install refused during redirect");
    }
    // Satisfy a constructor-time wait_control(kHelloOk, 0) if that is who
    // triggered this redirect; otherwise it just overwrites a stale entry.
    completed_[0] = std::move(h);
    break;
  }
  for (const auto& [seq, f] : pending_) {
    const auto bytes = encode_frame(f);
    outbuf_.insert(outbuf_.end(), bytes.begin(), bytes.end());
  }
  flush_once();
}

template <typename Stop>
void Client::pump(Stop&& stop) {
  const auto deadline = std::chrono::steady_clock::now() + cfg_.io_timeout;
  int hops = 0;
  std::uint8_t buf[4096];
  // The stop condition is checked only after a full write/read/decode
  // pass: even a pump that is already satisfied (e.g. a pipelined submit
  // under a roomy window) must push queued frames toward the server.
  for (;;) {
    bool progress = false;
    // Writes first: the request being waited on may still be queued.
    while (out_off_ < outbuf_.size()) {
      const IoResult r = conn_->write_some(std::span<const std::uint8_t>(
          outbuf_.data() + out_off_, outbuf_.size() - out_off_));
      if (r.status == IoStatus::kOk) {
        out_off_ += r.n;
        progress = true;
      } else if (r.status == IoStatus::kWouldBlock) {
        break;
      } else {
        throw std::runtime_error("net: connection lost while writing");
      }
    }
    if (out_off_ >= outbuf_.size() && out_off_ > 0) {
      outbuf_.clear();
      out_off_ = 0;
    }

    bool eof = false;
    for (;;) {
      const IoResult r = conn_->read_some(buf);
      if (r.status == IoStatus::kOk) {
        decoder_.feed(std::span<const std::uint8_t>(buf, r.n));
        progress = true;
      } else if (r.status == IoStatus::kWouldBlock) {
        break;
      } else if (r.status == IoStatus::kEof) {
        eof = true;  // decode what already arrived (a kError may explain this)
        break;
      } else {
        throw std::runtime_error("net: connection lost while reading");
      }
    }

    Frame f;
    for (;;) {
      const auto st = decoder_.next(f);
      if (st == FrameDecoder::Status::kNeedMore) break;
      if (st == FrameDecoder::Status::kBad)
        throw std::runtime_error(std::string("net: malformed server frame: ") +
                                 error_code_name(decoder_.error()));
      on_frame(std::move(f));
      progress = true;
    }

    if (redirect_pending_) {
      redirect_pending_ = false;
      const std::string target = redirect_target_;
      if (!cfg_.follow_redirects)
        throw WireError(ErrorCode::kConnectFailed,
                        "server redirected to " + target + " but redirects are disabled");
      if (++hops > cfg_.max_redirects)
        throw WireError(ErrorCode::kConnectFailed,
                        "redirect hop limit (" + std::to_string(cfg_.max_redirects) +
                            ") exceeded chasing session owner");
      do_redirect(target);
      eof = false;  // fresh connection
      progress = true;
    }

    if (stop()) return;
    if (eof) throw std::runtime_error("net: server closed the connection");
    if (!progress) {
      if (std::chrono::steady_clock::now() >= deadline)
        throw std::runtime_error("net: timed out waiting for server");
      const bool want_write = out_off_ < outbuf_.size();
      if (want_write)
        conn_->wait_writable(std::chrono::milliseconds(10));
      else
        conn_->wait_readable(std::chrono::milliseconds(10));
    }
  }
}

std::vector<std::uint8_t> Client::wait_control(Op ack, std::uint32_t seq) {
  pump([&] { return completed_.count(seq) != 0; });
  Frame f = std::move(completed_.at(seq));
  completed_.erase(seq);
  if (f.op == Op::kError) {
    ErrorCode code;
    std::string msg;
    decode_error_payload(f.payload, code, msg);
    throw WireError(code, msg);
  }
  if (f.op != ack)
    throw std::runtime_error(std::string("net: expected ") + op_name(ack) + ", got " +
                             op_name(f.op));
  return f.payload;
}

}  // namespace aesip::net
