// The wire-protocol server: aesip-wire-v1 sessions mapped onto farm::Farm.
//
// One event-loop thread owns every connection (accept, read, decode,
// respond, flush); the farm's worker threads own the cores. The two meet
// only through Farm::submit/try_submit and the std::future each returns —
// the same decoupling the paper builds in hardware (bus I/O overlapped
// with cipher compute) reproduced at the service layer: the loop keeps
// sockets full while the cores run flat out.
//
// Per-session flow control: kHelloOk grants a window of at most
// `ServerConfig::window` unanswered data frames. A client that overruns it
// is cut off (kWindowExceeded) — the window is what bounds server memory
// per session. Inside the window, backpressure is invisible: when a
// worker queue refuses a frame (try_submit load-shed), the frame parks in
// the connection's deferred queue and the loop stops *reading* that
// connection until the farm catches up, which backs the pressure all the
// way into the transport (a full TCP window / loopback pipe stalls the
// client's writes). CTR payloads big enough to fan out take the blocking
// submit path instead, so the farm's chunk scatter stays available to
// network traffic.
//
// Sessions ride connections: kHello binds the connection to a session id,
// kSetKey installs the key that every later data frame on the connection
// uses, and the farm's LRU slot affinity (keyed by session id) keeps a
// session's traffic on the core already holding its key. Responses carry
// the request's seq and may complete out of order across sessions;
// kDrain is the in-order barrier (answered only after everything before
// it). request_drain() is the server-wide version: stop accepting, finish
// every in-flight frame, flush every byte, then return — zero accepted
// frames are lost on a graceful shutdown.
//
// Idle connections (no frame and no in-flight work for `idle_timeout`)
// are closed — a bounded-state rule, like the session table's LRU.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <thread>

#include "farm/farm.hpp"
#include "fleet/fleet.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "obs/histogram.hpp"
#include "obs/tracer.hpp"

namespace aesip::net {

struct ServerConfig {
  farm::FarmConfig farm;            ///< workers, engine kind, queue bounds
  std::size_t window = 32;          ///< max unanswered data frames per session
  std::size_t max_payload = kDefaultMaxPayload;
  std::chrono::milliseconds idle_timeout{30000};
  std::chrono::milliseconds poll_interval{1};  ///< event-loop sleep granularity
  bool tracing = false;             ///< per-frame events into an obs::Tracer ring
  std::size_t trace_capacity = 8192;
  /// Serve the fleet admin opcodes (kAdminSwapEngine & co). Off, every
  /// admin frame is refused with kAdminDisabled.
  bool admin = true;
  /// Seed for the chaos injector's site classification + worker picks.
  std::uint32_t chaos_seed = 0x5eed;
};

/// Point-in-time server counters (monotonic unless marked as a gauge).
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t connections_active = 0;   ///< gauge
  std::uint64_t sessions_active = 0;      ///< gauge: connections past kHello
  std::uint64_t frames_received = 0;      ///< complete verified frames decoded
  std::uint64_t data_frames = 0;          ///< of which enc/dec/ctr work
  std::uint64_t responses_sent = 0;       ///< kResult frames queued for write
  std::uint64_t errors_sent = 0;          ///< kError frames queued for write
  std::uint64_t protocol_errors = 0;      ///< decoder poisonings (framing lost)
  std::uint64_t window_violations = 0;
  std::uint64_t deferred_retries = 0;     ///< try_submit load-sheds absorbed
  std::uint64_t idle_closes = 0;
  std::uint64_t drains = 0;               ///< kDrainOk barriers completed
  std::uint64_t admin_frames = 0;         ///< fleet admin requests handled
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t in_flight = 0;            ///< gauge: frames submitted, not answered
  obs::HistogramSnapshot request_latency_us;  ///< frame decoded -> response queued
  obs::HistogramSnapshot session_in_flight;   ///< window occupancy per data frame
  std::uint64_t trace_events = 0;
  std::uint64_t trace_dropped = 0;
};

class Server {
 public:
  /// Binds `address` on `transport` and builds the farm; throws on either
  /// failing. Serving starts with run() or start().
  Server(Transport& transport, const std::string& address, ServerConfig cfg = {});
  ~Server();  ///< request_drain() + join if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Resolved listen address (the real port when "host:0" was asked).
  const std::string& address() const noexcept { return address_; }
  const ServerConfig& config() const noexcept { return cfg_; }

  /// Serve on the calling thread until a drain completes.
  void run();
  /// Serve on a background thread; pair with stop().
  void start();
  /// Graceful shutdown, callable from any thread (including signal-ish
  /// contexts): stop accepting, answer every in-flight frame, flush,
  /// close. run() returns once done.
  void request_drain() { draining_.store(true, std::memory_order_release); }
  /// request_drain() and wait for the loop to finish.
  void stop();

  ServerStats stats() const;
  farm::FarmStats farm_stats() const { return farm_.stats(); }

  /// Per-frame server timeline (requires ServerConfig::tracing); false if
  /// tracing is off. Chrome trace_event JSON, like Farm::write_chrome_trace.
  bool write_chrome_trace(std::ostream& os) const;

 private:
  struct Connection;

  void loop();
  bool accept_new();
  bool service_reads(Connection& c);
  bool handle_frame(Connection& c, Frame&& f);
  bool handle_admin_frame(Connection& c, Frame&& f);
  void handle_data_frame(Connection& c, Frame&& f);
  bool retry_deferred(Connection& c);
  bool reap_completions(Connection& c);
  bool flush_writes(Connection& c);
  void send_frame(Connection& c, Op op, std::uint32_t seq, std::uint16_t flags,
                  std::vector<std::uint8_t> payload);
  void send_error(Connection& c, std::uint32_t seq, ErrorCode code, const std::string& msg,
                  bool fatal);
  bool submit_request(Connection& c, Frame& f);

  ServerConfig cfg_;
  farm::Farm farm_;
  fleet::FleetController fleet_{farm_};  ///< admin facade (loop-thread only)
  fleet::ChaosInjector chaos_;           ///< site classification for kAdminInject
  std::unique_ptr<Listener> listener_;
  std::string address_;
  std::vector<std::unique_ptr<Connection>> conns_;
  unsigned next_chaos_worker_ = 0;  ///< rotation for kAdminInject worker 0xFF
  std::atomic<bool> draining_{false};
  std::atomic<bool> running_{false};
  std::thread thread_;

  // Counters are written by the loop thread, read by anyone (relaxed
  // atomics, same pattern as the farm's WorkerCounters).
  struct Counters {
    std::atomic<std::uint64_t> connections_accepted{0};
    std::atomic<std::uint64_t> connections_closed{0};
    std::atomic<std::uint64_t> connections_active{0};
    std::atomic<std::uint64_t> sessions_active{0};
    std::atomic<std::uint64_t> frames_received{0};
    std::atomic<std::uint64_t> data_frames{0};
    std::atomic<std::uint64_t> responses_sent{0};
    std::atomic<std::uint64_t> errors_sent{0};
    std::atomic<std::uint64_t> protocol_errors{0};
    std::atomic<std::uint64_t> window_violations{0};
    std::atomic<std::uint64_t> deferred_retries{0};
    std::atomic<std::uint64_t> idle_closes{0};
    std::atomic<std::uint64_t> drains{0};
    std::atomic<std::uint64_t> admin_frames{0};
    std::atomic<std::uint64_t> bytes_in{0};
    std::atomic<std::uint64_t> bytes_out{0};
    std::atomic<std::uint64_t> in_flight{0};
  } counters_;
  obs::Histogram request_latency_us_;
  obs::Histogram session_in_flight_;
  std::unique_ptr<obs::Tracer> tracer_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace aesip::net
