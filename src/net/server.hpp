// The wire-protocol server: aesip-wire-v1 sessions mapped onto farm::Farm.
//
// Event-loop threading (ServerConfig::threads): with 1 thread, a single
// loop owns everything — accept, read, decode, respond, flush — exactly
// the shape earlier PRs shipped. With N > 1, an acceptor thread hands
// each new connection to one of N worker loops round-robin, and each
// worker owns its connections outright: no locks on the hot path, no
// sharing — a connection lives its whole life on one loop, the same
// exclusive-ownership rule the farm uses for engine state. Workers sleep
// on a ReadinessSet (epoll on Linux, poll elsewhere) built from their
// connections' native handles, so an idle worker costs O(ready) per
// wakeup, not O(watched) — that is what lets one process carry thousands
// of mostly-idle sessions. The two meet the farm only through
// Farm::submit/try_submit and the std::future each returns — the same
// decoupling the paper builds in hardware (bus I/O overlapped with cipher
// compute) reproduced at the service layer.
//
// Clustering (ServerConfig::cluster): several `aesip serve` processes
// shard sessions by consistent hash (cluster::Ring over gossiped
// membership, src/cluster/). Each server answers frames for sessions it
// owns; a frame for a session another node owns gets kRedirect carrying
// the owner's address, and the client reconnects there and replays its
// unanswered frames — zero loss across the move. kGossip frames (and a
// background gossip thread dialing one peer per interval) keep every
// node's membership view converging; a node whose last worker is
// quarantined stops serving, gossip spreads the fact, and its sessions
// re-home onto the survivors. Pinned connections (kFlagPinned on kHello)
// are never redirected — that is how gossip itself, and deliberate
// cross-node tooling, talk to a specific node.
//
// Per-session flow control: kHelloOk grants a window of at most
// `ServerConfig::window` unanswered data frames. A client that overruns it
// is cut off (kWindowExceeded) — the window is what bounds server memory
// per session. Inside the window, backpressure is invisible: when a
// worker queue refuses a frame (try_submit load-shed), the frame parks in
// the connection's deferred queue and the loop stops *reading* that
// connection until the farm catches up, which backs the pressure all the
// way into the transport (a full TCP window / loopback pipe stalls the
// client's writes). CTR payloads big enough to fan out take the blocking
// submit path instead, so the farm's chunk scatter stays available to
// network traffic.
//
// Sessions ride connections: kHello binds the connection to a session id,
// kSetKey installs the key that every later data frame on the connection
// uses, and the farm's LRU slot affinity (keyed by session id) keeps a
// session's traffic on the core already holding its key. Responses carry
// the request's seq and may complete out of order across sessions;
// kDrain is the in-order barrier (answered only after everything before
// it). request_drain() is the server-wide version: stop accepting, finish
// every in-flight frame, flush every byte, then return — zero accepted
// frames are lost on a graceful shutdown.
//
// Idle connections (no frame and no in-flight work for `idle_timeout`)
// are closed — a bounded-state rule, like the session table's LRU.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/director.hpp"
#include "farm/farm.hpp"
#include "fleet/fleet.hpp"
#include "net/poller.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "obs/histogram.hpp"
#include "obs/tracer.hpp"

namespace aesip::net {

/// Multi-node sharding: who this node is, who to gossip with.
struct ClusterConfig {
  std::string node_id;              ///< unique across the cluster
  std::string advertise;            ///< address peers/clients dial; defaults to
                                    ///< the resolved listen address
  std::vector<std::string> seeds;   ///< bootstrap peer addresses
  std::chrono::milliseconds gossip_interval{100};
  std::chrono::milliseconds suspect_after{1500};
  std::size_t ring_vnodes = 64;
};

struct ServerConfig {
  farm::FarmConfig farm;            ///< workers, engine kind, queue bounds
  int threads = 1;                  ///< event-loop threads (1 = fully inline)
  std::size_t window = 32;          ///< max unanswered data frames per session
  std::size_t max_payload = kDefaultMaxPayload;
  std::chrono::milliseconds idle_timeout{30000};
  std::chrono::milliseconds poll_interval{1};  ///< event-loop sleep granularity
  bool tracing = false;             ///< per-frame events into an obs::Tracer ring
  std::size_t trace_capacity = 8192;
  /// Serve the fleet admin opcodes (kAdminSwapEngine & co). Off, every
  /// admin frame is refused with kAdminDisabled.
  bool admin = true;
  /// Seed for the chaos injector's site classification + worker picks.
  std::uint32_t chaos_seed = 0x5eed;
  /// Join a multi-node cluster (gossip membership + session sharding).
  std::optional<ClusterConfig> cluster;
};

/// One event-loop thread's share of the work (all monotonic).
struct ServerThreadStats {
  int thread = 0;
  std::uint64_t connections_adopted = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t responses_sent = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
};

/// Point-in-time server counters (monotonic unless marked as a gauge).
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t connections_active = 0;   ///< gauge
  std::uint64_t sessions_active = 0;      ///< gauge: connections past kHello
  std::uint64_t frames_received = 0;      ///< complete verified frames decoded
  std::uint64_t data_frames = 0;          ///< of which enc/dec/ctr work
  std::uint64_t responses_sent = 0;       ///< kResult frames queued for write
  std::uint64_t errors_sent = 0;          ///< kError frames queued for write
  std::uint64_t protocol_errors = 0;      ///< decoder poisonings (framing lost)
  std::uint64_t window_violations = 0;
  std::uint64_t deferred_retries = 0;     ///< try_submit load-sheds absorbed
  std::uint64_t idle_closes = 0;
  std::uint64_t drains = 0;               ///< kDrainOk barriers completed
  std::uint64_t admin_frames = 0;         ///< fleet admin requests handled
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t in_flight = 0;            ///< gauge: frames submitted, not answered
  std::uint64_t redirects_sent = 0;       ///< frames bounced to their owning node
  std::uint64_t gossip_frames = 0;        ///< kGossip requests served
  std::uint64_t gossip_rounds = 0;        ///< outbound gossip dials attempted
  std::uint64_t cluster_nodes_alive = 0;  ///< gauge; 0 when not clustered
  std::string node_id;                    ///< empty when not clustered
  std::string poller;                     ///< ReadinessSet backend ("epoll"/"poll")
  obs::HistogramSnapshot request_latency_us;  ///< frame decoded -> response queued
  obs::HistogramSnapshot session_in_flight;   ///< window occupancy per data frame
  std::uint64_t trace_events = 0;
  std::uint64_t trace_dropped = 0;
  std::vector<ServerThreadStats> per_thread;  ///< one entry per event-loop thread
};

class Server {
 public:
  /// Binds `address` on `transport` and builds the farm; throws on either
  /// failing. Serving starts with run() or start().
  Server(Transport& transport, const std::string& address, ServerConfig cfg = {});
  ~Server();  ///< request_drain() + join if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Resolved listen address (the real port when "host:0" was asked).
  const std::string& address() const noexcept { return address_; }
  const ServerConfig& config() const noexcept { return cfg_; }

  /// Serve on the calling thread until a drain completes.
  void run();
  /// Serve on a background thread; pair with stop().
  void start();
  /// Graceful shutdown, callable from any thread (including signal-ish
  /// contexts): stop accepting, answer every in-flight frame, flush,
  /// close. run() returns once done.
  void request_drain() { draining_.store(true, std::memory_order_release); }
  /// request_drain() and wait for the loop to finish.
  void stop();

  ServerStats stats() const;
  farm::FarmStats farm_stats() const { return farm_.stats(); }
  /// The membership directory, or nullptr when not clustered.
  const cluster::Director* director() const noexcept { return director_.get(); }

  /// Per-frame server timeline (requires ServerConfig::tracing); false if
  /// tracing is off. Chrome trace_event JSON, like Farm::write_chrome_trace.
  bool write_chrome_trace(std::ostream& os) const;

 private:
  struct Connection;
  struct Loop;

  void serve();
  void serve_single(Loop& lp);
  void acceptor_loop();
  void worker_loop(Loop& lp);
  bool adopt_inbox(Loop& lp);
  bool service_conns(Loop& lp, bool draining);
  bool close_finished(Loop& lp, bool draining);
  void idle_wait(Loop& lp);
  void gossip_loop();

  bool service_reads(Connection& c);
  bool handle_frame(Connection& c, Frame&& f);
  bool handle_admin_frame(Connection& c, Frame&& f);
  void handle_data_frame(Connection& c, Frame&& f);
  bool maybe_redirect(Connection& c, const Frame& f);
  bool retry_deferred(Connection& c);
  bool reap_completions(Connection& c);
  bool flush_writes(Connection& c);
  void send_frame(Connection& c, Op op, std::uint32_t seq, std::uint16_t flags,
                  std::vector<std::uint8_t> payload);
  void send_error(Connection& c, std::uint32_t seq, ErrorCode code, const std::string& msg,
                  bool fatal);
  bool submit_request(Connection& c, Frame& f);

  ServerConfig cfg_;
  Transport* transport_;  ///< for the gossip thread's outbound dials
  farm::Farm farm_;
  fleet::FleetController fleet_{farm_};  ///< admin facade (guarded by admin_mu_)
  fleet::ChaosInjector chaos_;           ///< site classification for kAdminInject
  std::mutex admin_mu_;                  ///< fleet_/chaos_ may be hit from any loop
  std::unique_ptr<Listener> listener_;
  std::string address_;
  std::unique_ptr<cluster::Director> director_;  ///< null when not clustered
  std::vector<std::unique_ptr<Loop>> loops_;
  std::atomic<unsigned> next_chaos_worker_{0};  ///< rotation for kAdminInject 0xFF
  std::atomic<bool> draining_{false};
  std::atomic<bool> running_{false};
  std::thread thread_;
  std::thread gossip_thread_;
  std::atomic<bool> gossip_stop_{false};

  // Counters are written by the loop threads, read by anyone (relaxed
  // atomics, same pattern as the farm's WorkerCounters).
  struct Counters {
    std::atomic<std::uint64_t> connections_accepted{0};
    std::atomic<std::uint64_t> connections_closed{0};
    std::atomic<std::uint64_t> connections_active{0};
    std::atomic<std::uint64_t> sessions_active{0};
    std::atomic<std::uint64_t> frames_received{0};
    std::atomic<std::uint64_t> data_frames{0};
    std::atomic<std::uint64_t> responses_sent{0};
    std::atomic<std::uint64_t> errors_sent{0};
    std::atomic<std::uint64_t> protocol_errors{0};
    std::atomic<std::uint64_t> window_violations{0};
    std::atomic<std::uint64_t> deferred_retries{0};
    std::atomic<std::uint64_t> idle_closes{0};
    std::atomic<std::uint64_t> drains{0};
    std::atomic<std::uint64_t> admin_frames{0};
    std::atomic<std::uint64_t> bytes_in{0};
    std::atomic<std::uint64_t> bytes_out{0};
    std::atomic<std::uint64_t> in_flight{0};
    std::atomic<std::uint64_t> redirects_sent{0};
    std::atomic<std::uint64_t> gossip_frames{0};
    std::atomic<std::uint64_t> gossip_rounds{0};
    std::atomic<std::uint64_t> cluster_nodes_alive{0};
  } counters_;
  obs::Histogram request_latency_us_;
  obs::Histogram session_in_flight_;
  std::unique_ptr<obs::Tracer> tracer_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace aesip::net
