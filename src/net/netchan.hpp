// aesip-netchan-v1: a reliable, ordered byte stream over lossy datagrams.
//
// The wire protocol (wire.hpp) assumes a byte stream; UDP gives neither
// order nor delivery. This layer closes the gap the way game-engine
// netchans do — sequence numbers, cumulative + selective acks, timed
// retransmission — so the unchanged FrameCodec (and every opcode above
// it) runs verbatim over datagrams. Packet layout (all integers LE):
//
//   offset size  field
//   0      4     magic  "ANC1" (0x41 0x4E 0x43 0x31)
//   4      1     type   (PacketType)
//   5      1     flags  (reserved, 0)
//   6      2     payload_len
//   8      4     conv   (connection id the server assigned at kAccept)
//   12     4     seq    (kData: segment number; else 0)
//   16     4     ack    (cumulative: every segment <= ack was received)
//   20     4     ack_bits (bit i set: segment ack+1+i was received — the
//                selective window that keeps one lost datagram from
//                stalling everything behind it)
//   24     8     cookie (handshake types only; 0 in data/ack)
//   32     len   payload
//   32+len 4     crc32  (IEEE 802.3 over bytes [0, 32+len)) — a mangled
//                datagram is dropped here, never fed to the stream
//
// Handshake (stateless on the server until the cookie proves the source):
//
//   client                          server
//   kChallengeReq     ->
//                     <-  kChallenge{cookie = H(addr, secret, epoch)}
//   kConnect{cookie}  ->            (verify cookie; only now allocate)
//                     <-  kAccept{conv}
//
// The server computes the cookie from the datagram's source address, a
// process-local secret and the current epoch — it stores nothing, so a
// spoofed source costs the attacker a reply and the server an HMAC-style
// hash, never memory. Cookies from the current or previous epoch verify
// (a client mid-handshake across a rotation still connects); anything
// older is stale and rejected.
//
// Channel is the per-connection reliability engine, pure and clock-
// explicit: bytes in via send(), packets out via poll_outgoing(), packets
// in via on_packet(), bytes out via receive(). No sockets, no threads, no
// hidden time — tests drive it through a seeded packet mangler and a fake
// clock (tests/test_cluster.cpp). udp.cpp owns the sockets.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

namespace aesip::net::netchan {

inline constexpr std::uint32_t kMagic = 0x31434e41u;  // "ANC1" little-endian
inline constexpr std::size_t kPacketHeader = 32;
inline constexpr std::size_t kPacketTrailer = 4;  // the CRC
inline constexpr std::size_t kPacketOverhead = kPacketHeader + kPacketTrailer;

enum class PacketType : std::uint8_t {
  kChallengeReq = 1,
  kChallenge = 2,
  kConnect = 3,
  kAccept = 4,
  kData = 5,
  kAck = 6,
  kBye = 7,
};

struct Packet {
  PacketType type = PacketType::kData;
  std::uint32_t conv = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint32_t ack_bits = 0;
  std::uint64_t cookie = 0;
  std::vector<std::uint8_t> payload;
};

std::vector<std::uint8_t> encode_packet(const Packet& p);

/// Decode + verify one datagram. False on anything malformed (short, bad
/// magic, bad CRC, length mismatch) — the caller drops the datagram.
bool decode_packet(std::span<const std::uint8_t> datagram, Packet& out);

/// The stateless handshake cookie: a keyed hash of the peer's address
/// string, the listener's secret, and a coarse time epoch. Not a
/// cryptographic MAC — it gates state allocation against address
/// spoofing, it does not authenticate sessions.
std::uint64_t make_cookie(std::string_view addr, std::uint64_t secret,
                          std::uint64_t epoch) noexcept;

/// Accept cookies minted this epoch or the previous one (a handshake
/// straddling a rotation still completes); anything older is stale.
bool cookie_valid(std::uint64_t cookie, std::string_view addr, std::uint64_t secret,
                  std::uint64_t epoch_now) noexcept;

struct ChannelConfig {
  std::size_t mtu_payload = 1164;  ///< data bytes per kData packet
  std::size_t window = 64;         ///< max unacked outgoing segments
  std::chrono::milliseconds rto{25};
  std::size_t max_resend = 400;    ///< resend cap per segment; past it the
                                   ///< channel declares the peer dead
  std::size_t recv_stash_max = 256;  ///< out-of-order segments held
};

/// One direction pair of reliable byte stream over unreliable packets.
class Channel {
 public:
  using clock = std::chrono::steady_clock;

  explicit Channel(ChannelConfig cfg = {});

  // --- byte-stream side ------------------------------------------------------
  /// Queue bytes for the peer; returns how many were accepted (0 when the
  /// send window is full — the caller's kWouldBlock).
  std::size_t send(std::span<const std::uint8_t> bytes);
  /// Pop in-order received bytes; 0 when none are ready.
  std::size_t receive(std::span<std::uint8_t> out);

  // --- packet side -----------------------------------------------------------
  /// Feed one verified kData/kAck/kBye packet from the peer.
  void on_packet(const Packet& p, clock::time_point now);
  /// Next packet due (new data, retransmit, or a pure ack). False: nothing
  /// to send right now.
  bool poll_outgoing(Packet& out, clock::time_point now);
  /// Earliest instant poll_outgoing could produce a retransmit; nullopt
  /// when nothing is in flight and no ack is owed.
  std::optional<clock::time_point> next_deadline() const;

  // --- state -----------------------------------------------------------------
  bool idle() const { return tx_.empty() && !ack_pending_; }     ///< all sent data acked
  bool peer_closed() const { return peer_closed_; }              ///< kBye received
  bool dead() const { return dead_; }                            ///< resend cap blown
  bool recv_drained() const { return rx_ready_.empty() && stash_.empty(); }

  struct Stats {
    std::uint64_t segs_sent = 0;      ///< first transmissions
    std::uint64_t segs_resent = 0;    ///< RTO retransmissions
    std::uint64_t segs_received = 0;  ///< in-window data segments accepted
    std::uint64_t dups = 0;           ///< duplicate segments dropped
    std::uint64_t out_of_order = 0;   ///< segments stashed past a gap
    std::uint64_t acks_sent = 0;      ///< pure kAck packets emitted
  };
  const Stats& stats() const noexcept { return stats_; }

 private:
  void apply_acks(const Packet& p);
  std::uint32_t cum_ack() const noexcept { return rx_next_ - 1; }
  std::uint32_t ack_bits() const;

  ChannelConfig cfg_;
  Stats stats_;

  struct Segment {
    std::uint32_t seq = 0;
    std::vector<std::uint8_t> bytes;
    clock::time_point last_send{};  ///< min(): never sent
    std::size_t sends = 0;
  };
  std::deque<Segment> tx_;       ///< unacked, ascending seq (front = oldest)
  std::uint32_t tx_next_ = 1;    ///< seq for the next new segment

  std::uint32_t rx_next_ = 1;    ///< next in-order segment expected
  std::map<std::uint32_t, std::vector<std::uint8_t>> stash_;  ///< past-gap segments
  std::deque<std::uint8_t> rx_ready_;  ///< delivered, in-order bytes
  bool ack_pending_ = false;
  bool peer_closed_ = false;
  bool dead_ = false;
};

}  // namespace aesip::net::netchan
