#include "net/server.hpp"

#include <algorithm>
#include <deque>
#include <future>
#include <optional>
#include <sstream>
#include <vector>

#include "aes/modes.hpp"
#include "net/client.hpp"

namespace aesip::net {

namespace {

/// Tracer name table: indices are the categories recorded per frame.
constexpr const char* kTraceNames[] = {"enc", "dec", "ctr", "control"};

constexpr std::uint16_t trace_name_of(Op op) {
  switch (op) {
    case Op::kEncBlocks: return 0;
    case Op::kDecBlocks: return 1;
    case Op::kCtrStream: return 2;
    default: return 3;
  }
}

std::uint64_t us_since(std::chrono::steady_clock::time_point from) {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        std::chrono::steady_clock::now() - from)
                                        .count());
}

}  // namespace

/// One event-loop thread's world: the connections it owns exclusively, the
/// inbox the acceptor feeds it through (the only cross-thread touch point),
/// and the readiness set it sleeps on. With threads == 1 there is exactly
/// one Loop and the acceptor/worker split collapses back into one thread.
struct Server::Loop {
  int index = 0;
  std::vector<std::unique_ptr<Connection>> conns;
  std::mutex inbox_mu;
  std::vector<std::unique_ptr<Conn>> inbox;  ///< accepted, not yet adopted
  std::atomic<std::size_t> live{0};  ///< conns + inbox; the acceptor's drain gate
  std::unique_ptr<ReadinessSet> readiness = make_readiness_set();
  std::vector<int> watch;  ///< native handles, rebuilt when the conn set changes
  bool watch_dirty = true;
  std::thread thread;

  /// Per-thread share of the global counters (relaxed; read by stats()).
  struct PerThread {
    std::atomic<std::uint64_t> connections_adopted{0};
    std::atomic<std::uint64_t> frames_received{0};
    std::atomic<std::uint64_t> responses_sent{0};
    std::atomic<std::uint64_t> bytes_in{0};
    std::atomic<std::uint64_t> bytes_out{0};
  } pt;
};

/// Everything the loop knows about one connection. Owned exclusively by
/// one event-loop thread for its whole life.
struct Server::Connection {
  std::unique_ptr<Conn> conn;
  Loop* owner = nullptr;
  FrameDecoder decoder;
  std::vector<std::uint8_t> outbuf;  ///< encoded frames awaiting write
  std::size_t out_off = 0;           ///< bytes of outbuf already written

  bool got_hello = false;
  bool pinned = false;  ///< kFlagPinned on kHello: never redirect this one
  std::uint64_t session_id = 0;
  std::optional<farm::KeyBytes> key;  ///< 16/24/32 bytes; absent before kSetKey

  struct InFlight {
    std::uint32_t seq = 0;
    std::uint16_t flags = 0;
    std::future<farm::Result> future;
    std::chrono::steady_clock::time_point t_received;
    std::uint64_t blocks = 0;
    std::uint16_t trace_name = 3;
  };
  std::deque<InFlight> in_flight;
  std::deque<Frame> deferred;  ///< parsed data frames the farm refused (full queues)

  /// A fleet admin action executing on worker thread(s): poll() returns the
  /// kAdminOk text once every underlying future resolved, nullopt while
  /// pending, and throws the worker's exception on failure.
  struct PendingAdmin {
    std::uint32_t seq = 0;
    std::uint16_t flags = 0;
    std::function<std::optional<std::string>()> poll;
  };
  std::deque<PendingAdmin> admin_pending;

  bool drain_pending = false;  ///< kDrain received, kDrainOk not yet sent
  std::uint32_t drain_seq = 0;
  std::uint16_t drain_flags = 0;

  bool closing = false;  ///< stop reading; close once quiesced + flushed
  bool eof = false;      ///< peer hung up
  bool dead = false;     ///< transport error: drop without flushing
  std::chrono::steady_clock::time_point last_activity;

  explicit Connection(std::unique_ptr<Conn> c, std::size_t max_payload)
      : conn(std::move(c)), decoder(max_payload),
        last_activity(std::chrono::steady_clock::now()) {}

  bool flushed() const noexcept { return out_off >= outbuf.size(); }
  bool quiesced() const noexcept {
    return in_flight.empty() && deferred.empty() && admin_pending.empty();
  }
};

Server::Server(Transport& transport, const std::string& address, ServerConfig cfg)
    : cfg_(std::move(cfg)), transport_(&transport), farm_(cfg_.farm),
      chaos_(farm_, cfg_.chaos_seed), listener_(transport.listen(address)),
      address_(listener_->address()), start_(std::chrono::steady_clock::now()) {
  if (cfg_.window == 0) cfg_.window = 1;
  if (cfg_.threads < 1) cfg_.threads = 1;
  if (cfg_.tracing)
    tracer_ = std::make_unique<obs::Tracer>(static_cast<std::size_t>(cfg_.threads),
                                            cfg_.trace_capacity);
  for (int i = 0; i < cfg_.threads; ++i) {
    loops_.push_back(std::make_unique<Loop>());
    loops_.back()->index = i;
  }
  if (cfg_.cluster) {
    cluster::DirectorConfig dc;
    dc.self_id = cfg_.cluster->node_id;
    dc.self_address = cfg_.cluster->advertise.empty() ? address_ : cfg_.cluster->advertise;
    dc.seeds = cfg_.cluster->seeds;
    dc.suspect_after = cfg_.cluster->suspect_after;
    dc.ring_vnodes = cfg_.cluster->ring_vnodes;
    director_ = std::make_unique<cluster::Director>(std::move(dc),
                                                    std::chrono::steady_clock::now());
    counters_.cluster_nodes_alive.store(1, std::memory_order_relaxed);
  }
}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.exchange(true)) return;
  thread_ = std::thread([this] { serve(); });
}

void Server::run() {
  if (running_.exchange(true)) return;
  serve();
}

void Server::stop() {
  request_drain();
  if (thread_.joinable()) thread_.join();
  running_.store(false);
}

void Server::serve() {
  if (director_) {
    gossip_stop_.store(false, std::memory_order_release);
    gossip_thread_ = std::thread([this] { gossip_loop(); });
  }
  if (cfg_.threads == 1) {
    serve_single(*loops_[0]);
  } else {
    for (auto& lp : loops_) {
      Loop* p = lp.get();
      p->thread = std::thread([this, p] { worker_loop(*p); });
    }
    acceptor_loop();
    for (auto& lp : loops_)
      if (lp->thread.joinable()) lp->thread.join();
  }
  if (director_) {
    gossip_stop_.store(true, std::memory_order_release);
    if (gossip_thread_.joinable()) gossip_thread_.join();
  }
  listener_->close();
}

/// Move accepted connections from the acceptor's inbox into this loop's
/// exclusive set. The mutex hand-off is the happens-before edge that makes
/// lock-free ownership afterwards sound.
bool Server::adopt_inbox(Loop& lp) {
  std::vector<std::unique_ptr<Conn>> batch;
  {
    std::lock_guard lk(lp.inbox_mu);
    batch.swap(lp.inbox);
  }
  for (auto& c : batch) {
    auto conn = std::make_unique<Connection>(std::move(c), cfg_.max_payload);
    conn->owner = &lp;
    lp.conns.push_back(std::move(conn));
    lp.pt.connections_adopted.fetch_add(1, std::memory_order_relaxed);
    lp.watch_dirty = true;
  }
  return !batch.empty();
}

bool Server::service_conns(Loop& lp, bool draining) {
  bool progress = false;
  for (auto& cp : lp.conns) {
    Connection& c = *cp;
    if (draining) c.closing = true;
    progress |= service_reads(c);
    progress |= retry_deferred(c);
    progress |= reap_completions(c);
    progress |= flush_writes(c);
  }
  return progress;
}

/// Close what is finished: dead connections immediately; closing/EOF ones
/// once every accepted frame is answered and every byte written (the
/// zero-loss contract); idle ones at the timeout.
bool Server::close_finished(Loop& lp, bool draining) {
  bool progress = false;
  const auto now = std::chrono::steady_clock::now();
  for (auto it = lp.conns.begin(); it != lp.conns.end();) {
    Connection& c = **it;
    bool drop = c.dead;
    if (!drop && (c.closing || c.eof) && c.quiesced() && c.flushed()) drop = true;
    if (!drop && !draining && c.quiesced() && c.flushed() &&
        now - c.last_activity > cfg_.idle_timeout) {
      counters_.idle_closes.fetch_add(1, std::memory_order_relaxed);
      drop = true;
    }
    if (drop) {
      if (c.got_hello) counters_.sessions_active.fetch_sub(1, std::memory_order_relaxed);
      counters_.connections_active.fetch_sub(1, std::memory_order_relaxed);
      counters_.connections_closed.fetch_add(1, std::memory_order_relaxed);
      c.conn->close();
      it = lp.conns.erase(it);
      lp.live.fetch_sub(1, std::memory_order_acq_rel);
      lp.watch_dirty = true;
      progress = true;
    } else {
      ++it;
    }
  }
  return progress;
}

/// Nothing moved: sleep until I/O or a completion can change that. With
/// work in flight, waiting on the oldest future wakes on the common case
/// (completions); otherwise the readiness set (or, single-threaded, the
/// listener) wakes on bytes, and the poll interval bounds the rest.
void Server::idle_wait(Loop& lp) {
  Connection* waiting = nullptr;
  for (auto& cp : lp.conns)
    if (!cp->in_flight.empty()) {
      waiting = cp.get();
      break;
    }
  if (waiting) {
    waiting->in_flight.front().future.wait_for(cfg_.poll_interval);
    return;
  }
  if (cfg_.threads == 1) {
    // Single-thread mode: the listener's wait doubles as the connection
    // wait (loopback wakes on any hub activity) — the pre-threading shape.
    listener_->wait(cfg_.poll_interval);
    return;
  }
  if (lp.watch_dirty) {
    lp.watch.clear();
    for (auto& cp : lp.conns) lp.watch.push_back(cp->conn->native_handle());
    lp.readiness->rebuild(lp.watch);
    lp.watch_dirty = false;
  }
  lp.readiness->wait(cfg_.poll_interval);
}

/// threads == 1: accept and serve on one thread (the original event loop).
void Server::serve_single(Loop& lp) {
  for (;;) {
    const bool draining = draining_.load(std::memory_order_acquire);
    bool progress = false;

    if (!draining) {
      while (auto c = listener_->accept()) {
        {
          std::lock_guard lk(lp.inbox_mu);
          lp.inbox.push_back(std::move(c));
        }
        lp.live.fetch_add(1, std::memory_order_acq_rel);
        counters_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
        counters_.connections_active.fetch_add(1, std::memory_order_relaxed);
        progress = true;
      }
    }
    progress |= adopt_inbox(lp);
    progress |= service_conns(lp, draining);
    progress |= close_finished(lp, draining);

    if (draining && lp.conns.empty()) break;
    if (!progress) idle_wait(lp);
  }
}

/// threads > 1: this thread only accepts and distributes round-robin; the
/// worker loops own every connection after the inbox hand-off.
void Server::acceptor_loop() {
  std::size_t rr = 0;
  for (;;) {
    const bool draining = draining_.load(std::memory_order_acquire);
    bool progress = false;
    if (!draining) {
      while (auto c = listener_->accept()) {
        Loop& lp = *loops_[rr++ % loops_.size()];
        {
          std::lock_guard lk(lp.inbox_mu);
          lp.inbox.push_back(std::move(c));
        }
        lp.live.fetch_add(1, std::memory_order_acq_rel);
        counters_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
        counters_.connections_active.fetch_add(1, std::memory_order_relaxed);
        progress = true;
      }
    } else {
      std::size_t total = 0;
      for (auto& lp : loops_) total += lp->live.load(std::memory_order_acquire);
      if (total == 0) break;
    }
    if (!progress) listener_->wait(cfg_.poll_interval);
  }
}

void Server::worker_loop(Loop& lp) {
  for (;;) {
    const bool draining = draining_.load(std::memory_order_acquire);
    bool progress = adopt_inbox(lp);
    progress |= service_conns(lp, draining);
    progress |= close_finished(lp, draining);

    if (draining && lp.conns.empty() && lp.live.load(std::memory_order_acquire) == 0)
      break;
    if (!progress) idle_wait(lp);
  }
}

/// The membership side-channel: tick our heartbeat, dial one peer, trade
/// views. A pinned client (never redirected) carries the kGossip frame;
/// failures are swallowed — an unreachable peer's heartbeat simply stops
/// advancing and suspicion does the rest. Gossip never takes the node down.
void Server::gossip_loop() {
  const ClusterConfig& cl = *cfg_.cluster;
  while (!gossip_stop_.load(std::memory_order_acquire)) {
    const auto now = std::chrono::steady_clock::now();
    if (draining_.load(std::memory_order_acquire) && director_->self_serving())
      director_->set_self_serving(false);  // leave the ring before going silent
    director_->tick(now);
    counters_.cluster_nodes_alive.store(director_->alive_count(now),
                                        std::memory_order_relaxed);
    if (const auto peer = director_->pick_peer(now)) {
      counters_.gossip_rounds.fetch_add(1, std::memory_order_relaxed);
      try {
        ClientConfig cc;
        cc.connect_attempts = 1;
        cc.io_timeout = std::chrono::milliseconds(750);
        cc.pinned = true;
        cc.follow_redirects = false;
        Client peer_client(*transport_, *peer, cluster::hash64(cl.node_id), cc);
        const auto reply = peer_client.gossip(director_->encode_view());
        director_->merge_view(reply, std::chrono::steady_clock::now());
        peer_client.bye();
      } catch (const std::exception&) {
      }
    }
    auto remaining = cl.gossip_interval;
    while (remaining.count() > 0 && !gossip_stop_.load(std::memory_order_acquire)) {
      const auto slice = std::min(remaining, std::chrono::milliseconds(10));
      std::this_thread::sleep_for(slice);
      remaining -= slice;
    }
  }
}

bool Server::service_reads(Connection& c) {
  // Flow control: while frames are deferred (farm backpressure), the
  // connection is not read — bytes pile up in the transport and
  // eventually stall the client's writes. The per-session window is
  // enforced in handle_data_frame instead of by throttling reads: a
  // compliant client never overruns it (it counts its own unanswered
  // frames, and the server's count is never higher), so decoding ahead
  // is safe and an overrun identifies a protocol violator to cut off.
  if (c.closing || c.eof || c.dead || !c.deferred.empty()) return false;

  bool any = false;
  std::uint8_t buf[4096];
  for (int round = 0; round < 64; ++round) {  // bounded: no conn starves the loop
    const IoResult r = c.conn->read_some(buf);
    if (r.status == IoStatus::kOk) {
      any = true;
      c.last_activity = std::chrono::steady_clock::now();
      counters_.bytes_in.fetch_add(r.n, std::memory_order_relaxed);
      c.owner->pt.bytes_in.fetch_add(r.n, std::memory_order_relaxed);
      c.decoder.feed(std::span<const std::uint8_t>(buf, r.n));
    } else if (r.status == IoStatus::kEof) {
      c.eof = true;
      break;
    } else if (r.status == IoStatus::kError) {
      c.dead = true;
      return any;
    } else {
      break;  // kWouldBlock
    }
  }

  Frame f;
  for (;;) {
    const auto st = c.decoder.next(f);
    if (st == FrameDecoder::Status::kNeedMore) break;
    if (st == FrameDecoder::Status::kBad) {
      // Framing is lost: report why, then never read this stream again.
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      send_error(c, 0, c.decoder.error(),
                 std::string("unrecoverable framing error: ") +
                     error_code_name(c.decoder.error()),
                 /*fatal=*/true);
      break;
    }
    any = true;
    if (!handle_frame(c, std::move(f)) || c.closing) break;
    if (!c.deferred.empty()) break;  // farm backpressure: stop decoding ahead
  }
  return any;
}

/// Does another node own this frame's session? If so, answer kRedirect
/// with the owner's address and wind the connection down — everything
/// already accepted still completes and flushes first, so nothing is lost;
/// the client replays its unanswered frames at the owner.
bool Server::maybe_redirect(Connection& c, const Frame& f) {
  if (!director_ || c.pinned) return false;
  if (f.op == Op::kHello && (f.flags & kFlagPinned)) return false;
  const auto now = std::chrono::steady_clock::now();
  const std::uint64_t sid = f.op == Op::kHello ? f.session_id : c.session_id;
  const std::string owner = director_->owner(sid, now);
  if (owner.empty() || owner == director_->self_id()) return false;
  const std::string addr = director_->address_of(owner);
  if (addr.empty()) return false;
  counters_.redirects_sent.fetch_add(1, std::memory_order_relaxed);
  send_frame(c, Op::kRedirect, f.seq, f.flags,
             std::vector<std::uint8_t>(addr.begin(), addr.end()));
  c.closing = true;
  return true;
}

bool Server::handle_frame(Connection& c, Frame&& f) {
  counters_.frames_received.fetch_add(1, std::memory_order_relaxed);
  c.owner->pt.frames_received.fetch_add(1, std::memory_order_relaxed);
  c.last_activity = std::chrono::steady_clock::now();

  if (!is_request_op(f.op)) {
    send_error(c, f.seq, ErrorCode::kUnknownOpcode,
               "unknown or non-request opcode", /*fatal=*/true);
    return false;
  }
  if (!c.got_hello && f.op != Op::kHello) {
    send_error(c, f.seq, ErrorCode::kNotHello, "first frame must be HELLO", /*fatal=*/true);
    return false;
  }
  if (draining_.load(std::memory_order_acquire) &&
      (f.op == Op::kEncBlocks || f.op == Op::kDecBlocks || f.op == Op::kCtrStream)) {
    send_error(c, f.seq, ErrorCode::kDraining, "server is draining", /*fatal=*/false);
    return true;
  }

  switch (f.op) {
    case Op::kHello: {
      if (maybe_redirect(c, f)) return false;
      if (!c.got_hello) counters_.sessions_active.fetch_add(1, std::memory_order_relaxed);
      c.got_hello = true;
      c.pinned = (f.flags & kFlagPinned) != 0;
      c.session_id = f.session_id;
      std::vector<std::uint8_t> p;
      put_u32(p, static_cast<std::uint32_t>(cfg_.max_payload));
      put_u32(p, static_cast<std::uint32_t>(cfg_.window));
      send_frame(c, Op::kHelloOk, f.seq, f.flags, std::move(p));
      return true;
    }
    case Op::kSetKey:
    case Op::kRekey: {
      if (maybe_redirect(c, f)) return false;
      const auto key = farm::KeyBytes::from(f.payload);
      if (!key) {
        send_error(c, f.seq, ErrorCode::kBadPayload, "key must be 16, 24 or 32 bytes",
                   /*fatal=*/false);
        return true;
      }
      c.key = *key;
      send_frame(c, Op::kKeyOk, f.seq, f.flags, {});
      return true;
    }
    case Op::kEncBlocks:
    case Op::kDecBlocks:
    case Op::kCtrStream:
      if (maybe_redirect(c, f)) return false;
      handle_data_frame(c, std::move(f));
      return true;
    case Op::kStats: {
      std::ostringstream os;
      farm_.stats().write_json(os, cfg_.farm.clock_ns);
      const std::string s = os.str();
      send_frame(c, Op::kStatsOk, f.seq, f.flags,
                 std::vector<std::uint8_t>(s.begin(), s.end()));
      return true;
    }
    case Op::kGossip: {
      if (!director_) {
        send_error(c, f.seq, ErrorCode::kNotClustered, "server is not clustered",
                   /*fatal=*/false);
        return true;
      }
      counters_.gossip_frames.fetch_add(1, std::memory_order_relaxed);
      const auto now = std::chrono::steady_clock::now();
      if (!director_->merge_view(f.payload, now)) {
        send_error(c, f.seq, ErrorCode::kBadPayload, "malformed gossip view",
                   /*fatal=*/false);
        return true;
      }
      send_frame(c, Op::kGossipOk, f.seq, f.flags, director_->encode_view());
      return true;
    }
    case Op::kAdminFleetStatus:
    case Op::kAdminSwapEngine:
    case Op::kAdminQuarantine:
    case Op::kAdminInject:
      return handle_admin_frame(c, std::move(f));
    case Op::kDrain:
      if (c.quiesced()) {
        counters_.drains.fetch_add(1, std::memory_order_relaxed);
        send_frame(c, Op::kDrainOk, f.seq, f.flags, {});
      } else {
        c.drain_pending = true;
        c.drain_seq = f.seq;
        c.drain_flags = f.flags;
      }
      return true;
    case Op::kBye:
      send_frame(c, Op::kByeOk, f.seq, f.flags, {});
      c.closing = true;
      return false;
    default:
      send_error(c, f.seq, ErrorCode::kUnknownOpcode, "unhandled opcode", /*fatal=*/true);
      return false;
  }
}

/// The fleet admin plane. Quarantine and status answer inline; swap and
/// inject execute on the target worker's own thread, so the response is
/// parked as a PendingAdmin the reap pass polls — the loop never blocks on
/// a worker. admin_mu_ serializes the fleet facade across event loops.
bool Server::handle_admin_frame(Connection& c, Frame&& f) {
  if (!cfg_.admin) {
    send_error(c, f.seq, ErrorCode::kAdminDisabled, "admin plane disabled", /*fatal=*/false);
    return true;
  }
  counters_.admin_frames.fetch_add(1, std::memory_order_relaxed);
  const int workers = cfg_.farm.workers;

  switch (f.op) {
    case Op::kAdminFleetStatus: {
      std::ostringstream os;
      {
        std::lock_guard lk(admin_mu_);
        fleet::FleetStatus st = fleet_.status();
        if (cfg_.cluster) st.node = cfg_.cluster->node_id;
        st.write_json(os);
      }
      const std::string s = os.str();
      send_frame(c, Op::kAdminStatusOk, f.seq, f.flags,
                 std::vector<std::uint8_t>(s.begin(), s.end()));
      return true;
    }
    case Op::kAdminSwapEngine: {
      if (f.payload.size() < 2 || f.payload[1] > 2) {
        send_error(c, f.seq, ErrorCode::kBadPayload,
                   "expect [worker u8][kind u8 0..2][variant name?]",
                   /*fatal=*/false);
        return true;
      }
      const auto kind = static_cast<engine::EngineKind>(f.payload[1]);
      arch::VariantSpec variant;
      if (f.payload.size() > 2) {
        const std::string name(f.payload.begin() + 2, f.payload.end());
        const auto parsed = arch::VariantSpec::parse(name);
        if (!parsed) {
          send_error(c, f.seq, ErrorCode::kBadPayload, "unknown variant '" + name + "'",
                     /*fatal=*/false);
          return true;
        }
        variant = *parsed;
      }
      std::vector<int> targets;
      if (f.payload[0] == 0xff) {
        for (int w = 0; w < workers; ++w) targets.push_back(w);
      } else if (f.payload[0] >= workers) {
        send_error(c, f.seq, ErrorCode::kBadWorker, "worker index out of range",
                   /*fatal=*/false);
        return true;
      } else {
        targets.push_back(f.payload[0]);
      }
      auto futures = std::make_shared<std::vector<std::future<farm::SwapReport>>>();
      {
        std::lock_guard lk(admin_mu_);
        for (const int w : targets) futures->push_back(farm_.swap_engine(w, kind, variant));
      }
      std::string to = engine::kind_name(kind);
      if (!(variant == arch::VariantSpec{})) to += ":" + variant.name();
      c.admin_pending.push_back(Connection::PendingAdmin{
          f.seq, f.flags, [futures, to]() -> std::optional<std::string> {
            for (auto& fu : *futures)
              if (fu.wait_for(std::chrono::seconds(0)) != std::future_status::ready)
                return std::nullopt;
            std::uint64_t max_pause = 0;
            std::string from;
            for (auto& fu : *futures) {
              const farm::SwapReport r = fu.get();  // rethrows worker failures
              max_pause = std::max(max_pause, r.pause_us);
              if (from.empty()) from = r.from;
            }
            return "swapped " + std::to_string(futures->size()) + " worker(s) " + from +
                   " -> " + to + ", max pause " + std::to_string(max_pause) + " us";
          }});
      return true;
    }
    case Op::kAdminQuarantine: {
      if (f.payload.size() != 2 || f.payload[1] > 1) {
        send_error(c, f.seq, ErrorCode::kBadPayload, "expect [worker u8][action u8 0|1]",
                   /*fatal=*/false);
        return true;
      }
      if (f.payload[0] >= workers) {
        send_error(c, f.seq, ErrorCode::kBadWorker, "worker index out of range",
                   /*fatal=*/false);
        return true;
      }
      const int w = f.payload[0];
      const bool resume = f.payload[1] == 1;
      bool serving = true;
      {
        std::lock_guard lk(admin_mu_);
        if (resume)
          fleet_.resume(w);
        else
          fleet_.quarantine(w);
        serving = farm_.stats().workers_enabled > 0;
      }
      // Cluster tie-in: a node whose last worker is quarantined cannot do
      // work — leave the ring so gossip re-homes its sessions; resuming a
      // worker rejoins. (No-op when not clustered.)
      if (director_) director_->set_self_serving(serving);
      const std::string s =
          "worker " + std::to_string(w) + (resume ? " resumed" : " quarantined");
      send_frame(c, Op::kAdminOk, f.seq, f.flags, std::vector<std::uint8_t>(s.begin(), s.end()));
      return true;
    }
    case Op::kAdminInject: {
      if (f.payload.size() != 5) {
        send_error(c, f.seq, ErrorCode::kBadPayload, "expect [worker u8][site u32]",
                   /*fatal=*/false);
        return true;
      }
      int w = f.payload[0];
      if (w == 0xff) {
        w = static_cast<int>(next_chaos_worker_.fetch_add(1, std::memory_order_relaxed) %
                             static_cast<unsigned>(workers));
      } else if (w >= workers) {
        send_error(c, f.seq, ErrorCode::kBadWorker, "worker index out of range",
                   /*fatal=*/false);
        return true;
      }
      std::uint32_t site = get_u32(f.payload, 1);
      std::shared_ptr<std::future<bool>> fut;
      {
        std::lock_guard lk(admin_mu_);
        if (site == 0xffffffffu)
          site = static_cast<std::uint32_t>(chaos_.corrupting_site());
        fut = std::make_shared<std::future<bool>>(farm_.inject_fault(w, site));
      }
      c.admin_pending.push_back(Connection::PendingAdmin{
          f.seq, f.flags, [fut, w, site]() -> std::optional<std::string> {
            if (fut->wait_for(std::chrono::seconds(0)) != std::future_status::ready)
              return std::nullopt;
            const bool flipped = fut->get();
            return std::string("inject site ") + std::to_string(site) + " worker " +
                   std::to_string(w) + (flipped ? ": flipped" : ": no gate-level state");
          }});
      return true;
    }
    default:
      send_error(c, f.seq, ErrorCode::kUnknownOpcode, "unhandled admin opcode", /*fatal=*/true);
      return false;
  }
}

void Server::handle_data_frame(Connection& c, Frame&& f) {
  if (!c.key) {
    send_error(c, f.seq, ErrorCode::kNoKey, "SET_KEY before data", /*fatal=*/false);
    return;
  }
  // Sub-layout checks: [mode u8][iv 16][blocks...] / [counter 16][bytes...].
  const bool is_ctr = f.op == Op::kCtrStream;
  const std::size_t head = is_ctr ? 16 : 17;
  if (f.payload.size() <= head) {
    send_error(c, f.seq, ErrorCode::kBadPayload, "payload too short", /*fatal=*/false);
    return;
  }
  if (!is_ctr) {
    if (f.payload[0] > 1) {
      send_error(c, f.seq, ErrorCode::kBadPayload, "mode must be 0 (ECB) or 1 (CBC)",
                 /*fatal=*/false);
      return;
    }
    if ((f.payload.size() - head) % aes::kBlock != 0) {
      send_error(c, f.seq, ErrorCode::kBadPayload, "data must be whole 16-byte blocks",
                 /*fatal=*/false);
      return;
    }
  }
  if (c.in_flight.size() + c.deferred.size() >= cfg_.window) {
    // The client broke the kHelloOk contract; cutting the connection is
    // what bounds server-side state per session.
    counters_.window_violations.fetch_add(1, std::memory_order_relaxed);
    send_error(c, f.seq, ErrorCode::kWindowExceeded, "flow-control window exceeded",
               /*fatal=*/true);
    return;
  }
  counters_.data_frames.fetch_add(1, std::memory_order_relaxed);
  session_in_flight_.record(c.in_flight.size() + 1);
  if (!submit_request(c, f)) c.deferred.push_back(std::move(f));
}

/// Build the farm request for a validated data frame and submit it.
/// Returns false when the farm's queue refused it (caller defers).
bool Server::submit_request(Connection& c, Frame& f) {
  const bool is_ctr = f.op == Op::kCtrStream;
  const std::size_t head = is_ctr ? 16 : 17;

  farm::Request req;
  req.session_id = c.session_id;
  req.key = *c.key;
  req.encrypt = f.op != Op::kDecBlocks;
  if (is_ctr) {
    req.mode = farm::Mode::kCtr;
    std::copy(f.payload.begin(), f.payload.begin() + 16, req.iv.begin());
  } else {
    req.mode = f.payload[0] == 0 ? farm::Mode::kEcb : farm::Mode::kCbc;
    std::copy(f.payload.begin() + 1, f.payload.begin() + 17, req.iv.begin());
  }
  req.payload.assign(f.payload.begin() + static_cast<std::ptrdiff_t>(head), f.payload.end());
  const std::uint64_t blocks = (req.payload.size() + aes::kBlock - 1) / aes::kBlock;

  Connection::InFlight inf;
  inf.seq = f.seq;
  inf.flags = f.flags;
  inf.t_received = std::chrono::steady_clock::now();
  inf.blocks = blocks;
  inf.trace_name = trace_name_of(f.op);

  // Fan-out-sized CTR streams go through the blocking submit so they keep
  // the farm's chunk-scatter path; the wait is bounded by the farm's own
  // queue capacity and workers never block on this thread, so it's short.
  if (is_ctr && cfg_.farm.workers > 1 && blocks >= cfg_.farm.ctr_fanout_min_blocks) {
    inf.future = farm_.submit(std::move(req));
  } else {
    auto maybe = farm_.try_submit(std::move(req));
    if (!maybe) return false;
    inf.future = std::move(*maybe);
  }
  c.in_flight.push_back(std::move(inf));
  counters_.in_flight.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool Server::retry_deferred(Connection& c) {
  bool any = false;
  while (!c.deferred.empty()) {
    if (c.in_flight.size() >= cfg_.window) break;
    if (!submit_request(c, c.deferred.front())) break;
    c.deferred.pop_front();
    counters_.deferred_retries.fetch_add(1, std::memory_order_relaxed);
    any = true;
  }
  return any;
}

bool Server::reap_completions(Connection& c) {
  bool any = false;
  for (std::size_t i = 0; i < c.in_flight.size();) {
    auto& inf = c.in_flight[i];
    if (inf.future.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
      ++i;
      continue;
    }
    const std::uint64_t latency_us = us_since(inf.t_received);
    try {
      farm::Result r = inf.future.get();
      send_frame(c, Op::kResult, inf.seq, inf.flags, std::move(r.data));
      counters_.responses_sent.fetch_add(1, std::memory_order_relaxed);
      c.owner->pt.responses_sent.fetch_add(1, std::memory_order_relaxed);
    } catch (const std::exception& e) {
      send_error(c, inf.seq, ErrorCode::kInternal, e.what(), /*fatal=*/false);
    }
    request_latency_us_.record(latency_us);
    if (tracer_) {
      obs::TraceEvent e;
      e.ts_us = us_since(start_) - latency_us;
      e.dur_us = static_cast<std::uint32_t>(latency_us);
      e.name = inf.trace_name;
      e.track = static_cast<std::uint16_t>(c.owner->index);
      e.arg = inf.blocks;
      e.arg2 = c.session_id;
      tracer_->record(static_cast<std::size_t>(c.owner->index), e);
    }
    c.in_flight.erase(c.in_flight.begin() + static_cast<std::ptrdiff_t>(i));
    counters_.in_flight.fetch_sub(1, std::memory_order_relaxed);
    any = true;
  }
  for (auto it = c.admin_pending.begin(); it != c.admin_pending.end();) {
    std::optional<std::string> done;
    try {
      done = it->poll();
    } catch (const std::exception& e) {
      send_error(c, it->seq, ErrorCode::kInternal, e.what(), /*fatal=*/false);
      it = c.admin_pending.erase(it);
      any = true;
      continue;
    }
    if (!done) {
      ++it;
      continue;
    }
    send_frame(c, Op::kAdminOk, it->seq, it->flags,
               std::vector<std::uint8_t>(done->begin(), done->end()));
    counters_.responses_sent.fetch_add(1, std::memory_order_relaxed);
    c.owner->pt.responses_sent.fetch_add(1, std::memory_order_relaxed);
    it = c.admin_pending.erase(it);
    any = true;
  }
  if (c.drain_pending && c.quiesced()) {
    c.drain_pending = false;
    counters_.drains.fetch_add(1, std::memory_order_relaxed);
    send_frame(c, Op::kDrainOk, c.drain_seq, c.drain_flags, {});
    any = true;
  }
  return any;
}

bool Server::flush_writes(Connection& c) {
  if (c.dead) return false;
  bool any = false;
  while (c.out_off < c.outbuf.size()) {
    const IoResult r = c.conn->write_some(
        std::span<const std::uint8_t>(c.outbuf.data() + c.out_off, c.outbuf.size() - c.out_off));
    if (r.status == IoStatus::kOk) {
      c.out_off += r.n;
      counters_.bytes_out.fetch_add(r.n, std::memory_order_relaxed);
      c.owner->pt.bytes_out.fetch_add(r.n, std::memory_order_relaxed);
      any = true;
    } else if (r.status == IoStatus::kWouldBlock) {
      break;
    } else {
      c.dead = true;
      break;
    }
  }
  if (c.flushed() && c.out_off > 0) {
    c.outbuf.clear();
    c.out_off = 0;
  }
  return any;
}

void Server::send_frame(Connection& c, Op op, std::uint32_t seq, std::uint16_t flags,
                        std::vector<std::uint8_t> payload) {
  Frame f;
  f.op = op;
  f.flags = flags;
  f.session_id = c.session_id;
  f.seq = seq;
  f.payload = std::move(payload);
  const auto bytes = encode_frame(f);
  c.outbuf.insert(c.outbuf.end(), bytes.begin(), bytes.end());
}

void Server::send_error(Connection& c, std::uint32_t seq, ErrorCode code,
                        const std::string& msg, bool fatal) {
  send_frame(c, Op::kError, seq, 0, encode_error_payload(code, msg));
  counters_.errors_sent.fetch_add(1, std::memory_order_relaxed);
  if (fatal) c.closing = true;
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections_accepted = counters_.connections_accepted.load(std::memory_order_relaxed);
  s.connections_closed = counters_.connections_closed.load(std::memory_order_relaxed);
  s.connections_active = counters_.connections_active.load(std::memory_order_relaxed);
  s.sessions_active = counters_.sessions_active.load(std::memory_order_relaxed);
  s.frames_received = counters_.frames_received.load(std::memory_order_relaxed);
  s.data_frames = counters_.data_frames.load(std::memory_order_relaxed);
  s.responses_sent = counters_.responses_sent.load(std::memory_order_relaxed);
  s.errors_sent = counters_.errors_sent.load(std::memory_order_relaxed);
  s.protocol_errors = counters_.protocol_errors.load(std::memory_order_relaxed);
  s.window_violations = counters_.window_violations.load(std::memory_order_relaxed);
  s.deferred_retries = counters_.deferred_retries.load(std::memory_order_relaxed);
  s.idle_closes = counters_.idle_closes.load(std::memory_order_relaxed);
  s.drains = counters_.drains.load(std::memory_order_relaxed);
  s.admin_frames = counters_.admin_frames.load(std::memory_order_relaxed);
  s.bytes_in = counters_.bytes_in.load(std::memory_order_relaxed);
  s.bytes_out = counters_.bytes_out.load(std::memory_order_relaxed);
  s.in_flight = counters_.in_flight.load(std::memory_order_relaxed);
  s.redirects_sent = counters_.redirects_sent.load(std::memory_order_relaxed);
  s.gossip_frames = counters_.gossip_frames.load(std::memory_order_relaxed);
  s.gossip_rounds = counters_.gossip_rounds.load(std::memory_order_relaxed);
  s.cluster_nodes_alive = counters_.cluster_nodes_alive.load(std::memory_order_relaxed);
  if (director_) s.node_id = director_->self_id();
  s.poller = loops_.empty() ? "" : loops_[0]->readiness->name();
  s.request_latency_us = request_latency_us_.snapshot();
  s.session_in_flight = session_in_flight_.snapshot();
  if (tracer_) {
    s.trace_events = tracer_->recorded();
    s.trace_dropped = tracer_->dropped();
  }
  for (const auto& lp : loops_) {
    ServerThreadStats t;
    t.thread = lp->index;
    t.connections_adopted = lp->pt.connections_adopted.load(std::memory_order_relaxed);
    t.frames_received = lp->pt.frames_received.load(std::memory_order_relaxed);
    t.responses_sent = lp->pt.responses_sent.load(std::memory_order_relaxed);
    t.bytes_in = lp->pt.bytes_in.load(std::memory_order_relaxed);
    t.bytes_out = lp->pt.bytes_out.load(std::memory_order_relaxed);
    s.per_thread.push_back(t);
  }
  return s;
}

bool Server::write_chrome_trace(std::ostream& os) const {
  if (!tracer_) return false;
  tracer_->write_chrome_trace(os, kTraceNames, "aesip serve");
  return true;
}

}  // namespace aesip::net
