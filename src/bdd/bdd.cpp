#include "bdd/bdd.hpp"

#include <algorithm>
#include <stdexcept>

namespace aesip::bdd {

namespace {
constexpr std::uint32_t kTerminalVar = 0xffffffffu;
}

Manager::Manager(std::size_t node_limit) : node_limit_(node_limit) {
  nodes_.push_back(Node{kTerminalVar, kFalse, kFalse});
  nodes_.push_back(Node{kTerminalVar, kTrue, kTrue});
}

Ref Manager::make(std::uint32_t v, Ref lo, Ref hi) {
  if (lo == hi) return lo;
  if (v >= (1u << 12)) throw std::runtime_error("bdd: variable id too large");
  const std::uint64_t key = (static_cast<std::uint64_t>(v) << 52) |
                            (static_cast<std::uint64_t>(lo) << 26) |
                            static_cast<std::uint64_t>(hi);
  const auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  if (nodes_.size() >= node_limit_ || nodes_.size() >= (1u << 26))
    throw std::runtime_error("bdd: node limit exceeded (bad variable order?)");
  const Ref r = static_cast<Ref>(nodes_.size());
  nodes_.push_back(Node{v, lo, hi});
  unique_.emplace(key, r);
  return r;
}

Ref Manager::var(std::uint32_t v) { return make(v, kFalse, kTrue); }

Ref Manager::ite(Ref i, Ref t, Ref e) {
  if (i == kTrue) return t;
  if (i == kFalse) return e;
  if (t == e) return t;
  if (t == kTrue && e == kFalse) return i;

  const std::uint64_t outer = (static_cast<std::uint64_t>(i) << 32) | t;
  auto& inner = ite_cache_[outer];
  if (const auto it = inner.find(e); it != inner.end()) return it->second;

  const std::uint32_t vi = nodes_[i].var;
  const std::uint32_t vt = nodes_[t].var;
  const std::uint32_t ve = nodes_[e].var;
  const std::uint32_t top = std::min(vi, std::min(vt, ve));

  const Ref i_lo = vi == top ? nodes_[i].lo : i;
  const Ref i_hi = vi == top ? nodes_[i].hi : i;
  const Ref t_lo = vt == top ? nodes_[t].lo : t;
  const Ref t_hi = vt == top ? nodes_[t].hi : t;
  const Ref e_lo = ve == top ? nodes_[e].lo : e;
  const Ref e_hi = ve == top ? nodes_[e].hi : e;

  const Ref lo = ite(i_lo, t_lo, e_lo);
  const Ref hi = ite(i_hi, t_hi, e_hi);
  const Ref r = make(top, lo, hi);
  ite_cache_[outer].emplace(e, r);
  return r;
}

bool Manager::eval(Ref r, const std::vector<std::uint64_t>& assignment) const {
  while (r > kTrue) {
    const Node& n = nodes_[r];
    const bool bit = (assignment[n.var / 64] >> (n.var % 64)) & 1U;
    r = bit ? n.hi : n.lo;
  }
  return r == kTrue;
}

double Manager::sat_fraction(Ref r) const {
  std::unordered_map<Ref, double> memo;
  auto rec = [&](auto&& self, Ref x) -> double {
    if (x == kFalse) return 0.0;
    if (x == kTrue) return 1.0;
    if (const auto it = memo.find(x); it != memo.end()) return it->second;
    const double v = 0.5 * (self(self, nodes_[x].lo) + self(self, nodes_[x].hi));
    memo.emplace(x, v);
    return v;
  };
  return rec(rec, r);
}

}  // namespace aesip::bdd
