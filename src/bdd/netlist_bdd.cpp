#include "bdd/netlist_bdd.hpp"

#include <algorithm>
#include <stdexcept>

namespace aesip::bdd {

using netlist::Cell;
using netlist::CellKind;
using netlist::kNoNet;
using netlist::Netlist;
using netlist::NetId;

namespace {

/// Shannon-expand a 256x8 table over the (symbolic) address functions.
Ref rom_bit(Manager& mgr, const std::array<Ref, 8>& addr,
            const std::array<std::uint8_t, 256>& table, int bit) {
  auto rec = [&](auto&& self, int depth, int base) -> Ref {
    if (depth < 0)
      return mgr.constant((table[static_cast<std::size_t>(base)] >> bit) & 1U);
    const Ref lo = self(self, depth - 1, base);
    const Ref hi = self(self, depth - 1, base | (1 << depth));
    return mgr.ite(addr[static_cast<std::size_t>(depth)], hi, lo);
  };
  return rec(rec, 7, 0);
}

}  // namespace

NetlistBdds build(Manager& mgr, const Netlist& nl,
                  const std::map<std::string, std::uint32_t>* shared_inputs,
                  std::uint32_t first_state_var) {
  NetlistBdds out;
  std::vector<Ref> f(nl.net_count(), kFalse);
  f[nl.const0()] = kFalse;
  f[nl.const1()] = kTrue;

  std::uint32_t next_var = 0;
  if (shared_inputs) {
    out.input_vars = *shared_inputs;
    next_var = first_state_var;
    for (const auto& pi : nl.inputs()) {
      const auto it = out.input_vars.find(pi.name);
      if (it == out.input_vars.end())
        throw std::invalid_argument("netlist_bdd: input '" + pi.name +
                                    "' missing from shared variable map");
      f[pi.net] = mgr.var(it->second);
    }
  } else {
    for (const auto& pi : nl.inputs()) {
      out.input_vars.emplace(pi.name, next_var);
      f[pi.net] = mgr.var(next_var++);
    }
  }

  // Flip-flop outputs are state variables, assigned in cell order.
  const auto& cells = nl.cells();
  for (const Cell& c : cells)
    if (c.kind == CellKind::kDff) f[c.out] = mgr.var(next_var++);

  // Combinational cells in creation (topological) order, ROMs interleaved
  // by their first output net id.
  struct Item {
    NetId order_net;
    bool is_rom;
    std::size_t index;
  };
  std::vector<Item> items;
  for (std::size_t ci = 0; ci < cells.size(); ++ci) {
    const Cell& c = cells[ci];
    switch (c.kind) {
      case CellKind::kDff:
      case CellKind::kConst0:
      case CellKind::kConst1:
        break;
      default:
        items.push_back({c.out, false, ci});
    }
  }
  for (std::size_t ri = 0; ri < nl.roms().size(); ++ri)
    items.push_back({nl.roms()[ri].out[0], true, ri});
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.order_net < b.order_net; });

  for (const Item& item : items) {
    if (item.is_rom) {
      const auto& rom = nl.roms()[item.index];
      std::array<Ref, 8> addr{};
      for (int i = 0; i < 8; ++i) addr[static_cast<std::size_t>(i)] = f[rom.addr[static_cast<std::size_t>(i)]];
      for (int bit = 0; bit < 8; ++bit)
        f[rom.out[static_cast<std::size_t>(bit)]] = rom_bit(mgr, addr, rom.table, bit);
      continue;
    }
    const Cell& c = cells[item.index];
    switch (c.kind) {
      case CellKind::kNot:
        f[c.out] = mgr.apply_not(f[c.in[0]]);
        break;
      case CellKind::kAnd2:
        f[c.out] = mgr.apply_and(f[c.in[0]], f[c.in[1]]);
        break;
      case CellKind::kOr2:
        f[c.out] = mgr.apply_or(f[c.in[0]], f[c.in[1]]);
        break;
      case CellKind::kXor2:
        f[c.out] = mgr.apply_xor(f[c.in[0]], f[c.in[1]]);
        break;
      case CellKind::kMux2:
        f[c.out] = mgr.ite(f[c.in[0]], f[c.in[2]], f[c.in[1]]);
        break;
      case CellKind::kLut: {
        // Shannon over the LUT inputs.
        auto rec = [&](auto&& self, int depth, std::uint16_t mask) -> Ref {
          if (depth < 0) return mgr.constant(mask & 1U);
          const int half = 1 << depth;
          std::uint16_t lo_mask = 0, hi_mask = 0;
          for (int idx = 0; idx < half; ++idx) {
            if ((mask >> idx) & 1U) lo_mask = static_cast<std::uint16_t>(lo_mask | (1U << idx));
            if ((mask >> (idx + half)) & 1U)
              hi_mask = static_cast<std::uint16_t>(hi_mask | (1U << idx));
          }
          const Ref lo = self(self, depth - 1, lo_mask);
          const Ref hi = self(self, depth - 1, hi_mask);
          return mgr.ite(f[c.in[static_cast<std::size_t>(depth)]], hi, lo);
        };
        f[c.out] = c.lut_arity == 0 ? mgr.constant(c.lut_mask & 1U)
                                    : rec(rec, c.lut_arity - 1, c.lut_mask);
        break;
      }
      default:
        break;
    }
  }

  for (const auto& po : nl.outputs()) out.outputs.emplace_back(po.name, f[po.net]);
  for (const Cell& c : cells)
    if (c.kind == CellKind::kDff) {
      const Ref d = f[c.in[0]];
      const Ref q = f[c.out];
      out.next_state.push_back(c.in[1] == kNoNet ? d : mgr.ite(f[c.in[1]], d, q));
    }
  return out;
}

EquivalenceResult prove_equivalent(const Netlist& a, const Netlist& b, std::size_t node_limit) {
  EquivalenceResult r;
  Manager mgr(node_limit);

  const auto fa = build(mgr, a);
  // State variables of b start where a's ended: inputs + a's dff count.
  const std::uint32_t first_state =
      static_cast<std::uint32_t>(fa.input_vars.size());
  if (a.stats().dffs != b.stats().dffs) {
    r.mismatch = "flip-flop counts differ (" + std::to_string(a.stats().dffs) + " vs " +
                 std::to_string(b.stats().dffs) + ")";
    return r;
  }
  if (a.inputs().size() != b.inputs().size()) {
    r.mismatch = "input counts differ";
    return r;
  }
  const auto fb = build(mgr, b, &fa.input_vars, first_state);

  if (fa.outputs.size() != fb.outputs.size()) {
    r.mismatch = "output counts differ";
    return r;
  }
  // Compare outputs by name (order-insensitive).
  std::map<std::string, Ref> b_outputs(fb.outputs.begin(), fb.outputs.end());
  for (const auto& [name, ref] : fa.outputs) {
    const auto it = b_outputs.find(name);
    if (it == b_outputs.end()) {
      r.mismatch = "output '" + name + "' missing";
      return r;
    }
    if (it->second != ref) {
      r.mismatch = "output '" + name + "' differs";
      return r;
    }
  }
  for (std::size_t i = 0; i < fa.next_state.size(); ++i) {
    if (fa.next_state[i] != fb.next_state[i]) {
      r.mismatch = "flip-flop " + std::to_string(i) + " next-state function differs";
      return r;
    }
  }
  r.equivalent = true;
  return r;
}

}  // namespace aesip::bdd
