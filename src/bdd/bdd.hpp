// Reduced ordered binary decision diagrams.
//
// A compact BDD manager used to *prove* — not sample — that the technology
// mapper and the TMR-style netlist transforms preserve functionality: two
// combinational functions are equivalent iff their reduced ordered BDDs
// are the same node.  Sequential designs are checked by treating register
// outputs as pseudo-inputs and register D/enable pins as pseudo-outputs,
// which is full FSM equivalence when both netlists share a state encoding
// (the mapper preserves flip-flops one-to-one).
//
// Classic implementation: unique table for canonicity, ITE with memoizing,
// complement-free (both polarities materialized).  Variable order is the
// caller's: for the IP netlists, control state before datapath state keeps
// the S-box compositions small.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace aesip::bdd {

/// Node reference; 0 and 1 are the terminals.
using Ref = std::uint32_t;
inline constexpr Ref kFalse = 0;
inline constexpr Ref kTrue = 1;

class Manager {
 public:
  /// `node_limit` guards against ordering blow-ups (throws std::runtime_error).
  explicit Manager(std::size_t node_limit = 20'000'000);

  Ref constant(bool v) const noexcept { return v ? kTrue : kFalse; }

  /// The function of input variable `v` (order = numeric order of v).
  Ref var(std::uint32_t v);

  Ref ite(Ref i, Ref t, Ref e);
  Ref apply_not(Ref a) { return ite(a, kFalse, kTrue); }
  Ref apply_and(Ref a, Ref b) { return ite(a, b, kFalse); }
  Ref apply_or(Ref a, Ref b) { return ite(a, kTrue, b); }
  Ref apply_xor(Ref a, Ref b) { return ite(a, apply_not(b), b); }

  bool is_const(Ref r) const noexcept { return r <= 1; }

  /// Evaluate under an assignment (bit v of `assignment[v/64]`).
  bool eval(Ref r, const std::vector<std::uint64_t>& assignment) const;

  /// Fraction of the 2^var_count assignments satisfying r.
  double sat_fraction(Ref r) const;

  std::size_t node_count() const noexcept { return nodes_.size(); }

 private:
  struct Node {
    std::uint32_t var;
    Ref lo, hi;
  };

  Ref make(std::uint32_t v, Ref lo, Ref hi);

  std::vector<Node> nodes_;
  std::unordered_map<std::uint64_t, Ref> unique_;
  std::unordered_map<std::uint64_t, std::unordered_map<std::uint64_t, Ref>> ite_cache_;
  std::size_t node_limit_;
};

}  // namespace aesip::bdd
