// Symbolic (BDD) semantics of a netlist + formal equivalence checking.
//
// build() computes one BDD per primary output and per flip-flop D/enable
// pin.  Primary inputs get variables in port order; flip-flop outputs get
// variables after them, in cell order — so two netlists whose flip-flops
// correspond one-to-one (the mapper's guarantee) can be compared function
// by function: identical BDD references <=> identical combinational
// semantics <=> identical sequential behaviour from any common state.
//
// ROM macros are composed exactly (a 255-ITE Shannon expansion of the
// table over the address functions), so ROM-flavoured and logic-flavoured
// S-box netlists can both be built — though only like against like is
// meaningfully compared.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "netlist/netlist.hpp"

namespace aesip::bdd {

struct NetlistBdds {
  /// Primary outputs by port name.
  std::vector<std::pair<std::string, Ref>> outputs;
  /// Per flip-flop (cell order): the *effective* next-state function
  /// ite(enable, D, Q) — so a clock-enable pin and an explicit hold mux
  /// compare equal, as they should.
  std::vector<Ref> next_state;
  /// Input-name -> variable id used.
  std::map<std::string, std::uint32_t> input_vars;
};

/// Build BDDs for `nl`.  If `shared_inputs` is non-null, input variables
/// are looked up by name from it (every input must be present) and state
/// variables start at `first_state_var`; otherwise fresh variables are
/// assigned (inputs in port order, then flip-flops).
NetlistBdds build(Manager& mgr, const netlist::Netlist& nl,
                  const std::map<std::string, std::uint32_t>* shared_inputs = nullptr,
                  std::uint32_t first_state_var = 0);

struct EquivalenceResult {
  bool equivalent = false;
  std::string mismatch;  ///< human-readable location of the first difference
};

/// Prove two netlists equivalent: same input/output port names, flip-flops
/// corresponding in cell order (same count), every output and every D /
/// enable function identical.
EquivalenceResult prove_equivalent(const netlist::Netlist& a, const netlist::Netlist& b,
                                   std::size_t node_limit = 20'000'000);

}  // namespace aesip::bdd
