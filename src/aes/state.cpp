#include "aes/state.hpp"

namespace aesip::aes {

std::string State::to_hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(static_cast<std::size_t>(2 * size_bytes()));
  for (int i = 0; i < size_bytes(); ++i) {
    const std::uint8_t b = bytes_[static_cast<std::size_t>(i)];
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

}  // namespace aesip::aes
