// The Rijndael substitution box, derived algebraically.
//
// FIPS-197 §5.1.1 defines SubBytes as the composition of the field
// inversion in GF(2^8) and a fixed affine map over GF(2).  We generate both
// the forward and the inverse table at compile time from that definition;
// the published 256-entry table is pinned against this derivation in the
// test suite, so a transcription error in either direction cannot hide.
//
// Each table is exactly the 256 x 8 bit ROM ("2048 bits of memory" in the
// paper's terminology) that one hardware S-box stores.
#pragma once

#include <array>
#include <cstdint>

#include "gf/bitmatrix.hpp"
#include "gf/gf256.hpp"

namespace aesip::aes {

namespace detail {

constexpr std::array<std::uint8_t, 256> make_sbox() noexcept {
  std::array<std::uint8_t, 256> t{};
  for (int i = 0; i < 256; ++i)
    t[static_cast<std::size_t>(i)] =
        gf::kSBoxAffine.apply(gf::inverse(static_cast<std::uint8_t>(i)));
  return t;
}

constexpr std::array<std::uint8_t, 256> make_inv_sbox() noexcept {
  constexpr auto fwd = make_sbox();
  std::array<std::uint8_t, 256> t{};
  for (int i = 0; i < 256; ++i) t[fwd[static_cast<std::size_t>(i)]] = static_cast<std::uint8_t>(i);
  return t;
}

}  // namespace detail

/// Forward S-box: sbox[x] = affine(inverse(x)).
inline constexpr std::array<std::uint8_t, 256> kSBox = detail::make_sbox();

/// Inverse S-box: inv_sbox[sbox[x]] = x.
inline constexpr std::array<std::uint8_t, 256> kInvSBox = detail::make_inv_sbox();

constexpr std::uint8_t sub_byte(std::uint8_t x) noexcept { return kSBox[x]; }
constexpr std::uint8_t inv_sub_byte(std::uint8_t x) noexcept { return kInvSBox[x]; }

/// Apply the forward S-box to each byte of a 32-bit word (FIPS SubWord).
constexpr std::uint32_t sub_word(std::uint32_t w) noexcept {
  return static_cast<std::uint32_t>(kSBox[w & 0xff]) |
         (static_cast<std::uint32_t>(kSBox[(w >> 8) & 0xff]) << 8) |
         (static_cast<std::uint32_t>(kSBox[(w >> 16) & 0xff]) << 16) |
         (static_cast<std::uint32_t>(kSBox[(w >> 24) & 0xff]) << 24);
}

/// Rotate the four bytes of a word left by one byte position (FIPS RotWord,
/// word stored little-endian byte 0 first).
constexpr std::uint32_t rot_word(std::uint32_t w) noexcept {
  return (w >> 8) | (w << 24);
}

static_assert(kSBox[0x00] == 0x63, "S-box anchor (FIPS-197 fig. 7)");
static_assert(kSBox[0x53] == 0xed, "S-box anchor (FIPS-197 example)");
static_assert(kInvSBox[0x63] == 0x00, "inverse S-box anchor");

}  // namespace aesip::aes
