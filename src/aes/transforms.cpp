#include "aes/transforms.hpp"

#include "aes/sbox.hpp"
#include "gf/gf256.hpp"
#include "gf/poly.hpp"

namespace aesip::aes {

int shift_offset(int nb, int row) noexcept {
  if (row == 0) return 0;
  if (nb == 8) {
    // Rijndael spec: C1..C3 = 1, 3, 4 for 256-bit blocks.
    constexpr int kWide[4] = {0, 1, 3, 4};
    return kWide[row];
  }
  return row;  // Nb = 4 and Nb = 6 use offsets 1, 2, 3
}

void sub_bytes(State& s) noexcept {
  for (int c = 0; c < s.columns(); ++c)
    for (int r = 0; r < State::kRows; ++r) s.set(r, c, sub_byte(s.at(r, c)));
}

void inv_sub_bytes(State& s) noexcept {
  for (int c = 0; c < s.columns(); ++c)
    for (int r = 0; r < State::kRows; ++r) s.set(r, c, inv_sub_byte(s.at(r, c)));
}

void shift_rows(State& s) noexcept {
  const int nb = s.columns();
  State t = s;
  for (int r = 1; r < State::kRows; ++r) {
    const int off = shift_offset(nb, r);
    for (int c = 0; c < nb; ++c) s.set(r, c, t.at(r, (c + off) % nb));
  }
}

void inv_shift_rows(State& s) noexcept {
  const int nb = s.columns();
  State t = s;
  for (int r = 1; r < State::kRows; ++r) {
    const int off = shift_offset(nb, r);
    for (int c = 0; c < nb; ++c) s.set(r, (c + off) % nb, t.at(r, c));
  }
}

namespace {

void mix_columns_by(State& s, const gf::ColumnPoly& m) noexcept {
  for (int c = 0; c < s.columns(); ++c) {
    const gf::ColumnPoly col{s.at(0, c), s.at(1, c), s.at(2, c), s.at(3, c)};
    const gf::ColumnPoly out = col * m;
    for (int r = 0; r < State::kRows; ++r) s.set(r, c, out[r]);
  }
}

std::uint32_t mix_word_by(std::uint32_t w, const gf::ColumnPoly& m) noexcept {
  const gf::ColumnPoly col{static_cast<std::uint8_t>(w), static_cast<std::uint8_t>(w >> 8),
                           static_cast<std::uint8_t>(w >> 16),
                           static_cast<std::uint8_t>(w >> 24)};
  const gf::ColumnPoly out = col * m;
  return static_cast<std::uint32_t>(out[0]) | (static_cast<std::uint32_t>(out[1]) << 8) |
         (static_cast<std::uint32_t>(out[2]) << 16) | (static_cast<std::uint32_t>(out[3]) << 24);
}

}  // namespace

void mix_columns(State& s) noexcept { mix_columns_by(s, gf::kMixColumnPoly); }
void inv_mix_columns(State& s) noexcept { mix_columns_by(s, gf::kInvMixColumnPoly); }

std::uint32_t mix_column_word(std::uint32_t col) noexcept {
  return mix_word_by(col, gf::kMixColumnPoly);
}
std::uint32_t inv_mix_column_word(std::uint32_t col) noexcept {
  return mix_word_by(col, gf::kInvMixColumnPoly);
}

void add_round_key(State& s, std::span<const std::uint8_t> round_key) noexcept {
  auto bytes = s.bytes();
  for (std::size_t i = 0; i < bytes.size(); ++i)
    bytes[i] = static_cast<std::uint8_t>(bytes[i] ^ round_key[i]);
}

}  // namespace aesip::aes
