// The four Rijndael round transformations and their inverses, on a State
// of any legal width (Nb in {4, 6, 8}).
//
// These are the "five functions" of the paper's Section 3 (Byte Sub, Shift
// Row, Mix Column, Add Key, plus the Round Key function, which lives in
// key_schedule.hpp).  Everything here is the *reference* formulation; the
// cycle-accurate hardware model in src/core re-implements the same maths in
// its mixed 32/128-bit structure and is tested against these functions.
#pragma once

#include <cstdint>
#include <span>

#include "aes/state.hpp"

namespace aesip::aes {

/// Row-shift offset for `row` at block width `nb` (Rijndael spec table:
/// offsets {1,2,3} for Nb=4 and Nb=6, {1,3,4} for Nb=8; row 0 never shifts).
int shift_offset(int nb, int row) noexcept;

/// SubBytes: apply the S-box to every state byte (paper Fig. 4).
void sub_bytes(State& s) noexcept;
void inv_sub_bytes(State& s) noexcept;

/// ShiftRows: rotate row r left by shift_offset(nb, r) (paper Fig. 6 shows
/// the inverse).
void shift_rows(State& s) noexcept;
void inv_shift_rows(State& s) noexcept;

/// MixColumns: multiply each column by c(x) mod x^4+1 (paper Fig. 7).
void mix_columns(State& s) noexcept;
void inv_mix_columns(State& s) noexcept;

/// AddRoundKey: XOR `round_key` (4*nb bytes, column-major like the state).
/// Self-inverse.
void add_round_key(State& s, std::span<const std::uint8_t> round_key) noexcept;

/// Single-column MixColumn on a packed word (row 0 in the low byte); the
/// hardware MixColumn128 block is four instances of this.
std::uint32_t mix_column_word(std::uint32_t col) noexcept;
std::uint32_t inv_mix_column_word(std::uint32_t col) noexcept;

}  // namespace aesip::aes
