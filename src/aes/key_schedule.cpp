#include "aes/key_schedule.hpp"

#include "aes/sbox.hpp"
#include "gf/gf256.hpp"

namespace aesip::aes {

std::uint32_t kstran(std::uint32_t w, int round) noexcept {
  return sub_word(rot_word(w)) ^ gf::rcon(static_cast<unsigned>(round));
}

std::vector<std::uint32_t> expand_key(const Geometry& g, std::span<const std::uint8_t> key) {
  std::vector<std::uint32_t> w(static_cast<std::size_t>(g.schedule_words()));
  for (int i = 0; i < g.nk; ++i)
    w[static_cast<std::size_t>(i)] =
        static_cast<std::uint32_t>(key[static_cast<std::size_t>(4 * i)]) |
        (static_cast<std::uint32_t>(key[static_cast<std::size_t>(4 * i + 1)]) << 8) |
        (static_cast<std::uint32_t>(key[static_cast<std::size_t>(4 * i + 2)]) << 16) |
        (static_cast<std::uint32_t>(key[static_cast<std::size_t>(4 * i + 3)]) << 24);
  for (int i = g.nk; i < g.schedule_words(); ++i) {
    std::uint32_t temp = w[static_cast<std::size_t>(i - 1)];
    if (i % g.nk == 0) {
      temp = kstran(temp, i / g.nk);
    } else if (g.nk > 6 && i % g.nk == 4) {
      // The 256-bit key schedule inserts an extra SubWord (FIPS-197 §5.2).
      temp = sub_word(temp);
    }
    w[static_cast<std::size_t>(i)] = w[static_cast<std::size_t>(i - g.nk)] ^ temp;
  }
  return w;
}

std::vector<std::uint8_t> round_key_bytes(const Geometry& g,
                                          std::span<const std::uint32_t> schedule, int round) {
  std::vector<std::uint8_t> out(static_cast<std::size_t>(g.block_bytes()));
  for (int c = 0; c < g.nb; ++c) {
    const std::uint32_t word = schedule[static_cast<std::size_t>(round * g.nb + c)];
    for (int r = 0; r < 4; ++r)
      out[static_cast<std::size_t>(4 * c + r)] = static_cast<std::uint8_t>(word >> (8 * r));
  }
  return out;
}

}  // namespace aesip::aes
