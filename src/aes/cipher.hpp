// The Rijndael block cipher — reference ("golden") implementation.
//
// Supports every legal Rijndael geometry: block sizes 128/192/256 and key
// sizes 128/192/256 (nine combinations).  AES is the Nb=4 subset; AES-128
// (the paper's target) is Geometry{4,4,10}.
//
// The round structure follows the paper's Figure 2: an initial AddKey, then
// Nr-1 full rounds (ByteSub, ShiftRow, MixColumn, AddKey) and a final round
// without MixColumn.  Decryption applies the inverse functions in inverse
// order (AddKey, IShiftRow, IByteSub per round with IMixColumn between).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "aes/key_schedule.hpp"
#include "aes/state.hpp"

namespace aesip::aes {

/// Observer invoked after every round of encrypt/decrypt; used by the
/// round-by-round conformance tests and the trace example.  `round` counts
/// 0 (after the initial AddKey) through Nr.
using RoundObserver = void (*)(int round, const State& s, void* user);

class Rijndael {
 public:
  /// Schedule the cipher for `key` with the given geometry.
  /// Precondition: key.size() == g.key_bytes().
  Rijndael(const Geometry& g, std::span<const std::uint8_t> key);

  /// Convenience: derive geometry from bit sizes.
  static Rijndael make(int block_bits, int key_bits, std::span<const std::uint8_t> key) {
    return Rijndael(Geometry::make(block_bits, key_bits), key);
  }

  /// AES geometry (128-bit block) inferred from the key length alone —
  /// the shape every service-layer oracle wants: 16/24/32 bytes in,
  /// AES-128/-192/-256 out.
  static Rijndael for_key(std::span<const std::uint8_t> key) {
    return Rijndael(Geometry::make(128, static_cast<int>(key.size()) * 8), key);
  }

  const Geometry& geometry() const noexcept { return geometry_; }
  std::span<const std::uint32_t> schedule() const noexcept { return schedule_; }

  /// Encrypt/decrypt exactly one block (4*Nb bytes). `out` may alias `in`.
  void encrypt_block(std::span<const std::uint8_t> in, std::span<std::uint8_t> out,
                     RoundObserver observer = nullptr, void* user = nullptr) const;
  void decrypt_block(std::span<const std::uint8_t> in, std::span<std::uint8_t> out,
                     RoundObserver observer = nullptr, void* user = nullptr) const;

  /// Round key `round` in the byte layout add_round_key consumes.
  std::vector<std::uint8_t> round_key(int round) const {
    return round_key_bytes(geometry_, schedule_, round);
  }

 private:
  Geometry geometry_;
  std::vector<std::uint32_t> schedule_;
};

/// AES-128 on 16-byte blocks — the paper's AES128 mode.
class Aes128 {
 public:
  static constexpr int kBlockBytes = 16;
  static constexpr int kKeyBytes = 16;
  static constexpr int kRounds = 10;

  explicit Aes128(std::span<const std::uint8_t> key)
      : impl_(Geometry::make(128, 128), key) {}

  void encrypt_block(std::span<const std::uint8_t> in, std::span<std::uint8_t> out) const {
    impl_.encrypt_block(in, out);
  }
  void decrypt_block(std::span<const std::uint8_t> in, std::span<std::uint8_t> out) const {
    impl_.decrypt_block(in, out);
  }
  const Rijndael& rijndael() const noexcept { return impl_; }

 private:
  Rijndael impl_;
};

}  // namespace aesip::aes
