#include "aes/ttable.hpp"

#include <stdexcept>

#include "aes/key_schedule.hpp"
#include "aes/sbox.hpp"
#include "aes/transforms.hpp"
#include "gf/gf256.hpp"

namespace aesip::aes {

namespace {

// Words pack row r of a column into bits [8r, 8r+8) (matching
// State::column_word), so T_r[x] is column r of the MixColumn matrix times
// S[x].
constexpr std::uint32_t pack(std::uint8_t b0, std::uint8_t b1, std::uint8_t b2,
                             std::uint8_t b3) noexcept {
  return static_cast<std::uint32_t>(b0) | (static_cast<std::uint32_t>(b1) << 8) |
         (static_cast<std::uint32_t>(b2) << 16) | (static_cast<std::uint32_t>(b3) << 24);
}

struct Tables {
  std::array<std::array<std::uint32_t, 256>, 4> enc{};
  std::array<std::array<std::uint32_t, 256>, 4> dec{};
};

Tables make_tables() noexcept {
  // MixColumn matrix rows (FIPS-197 eq. 5.6) and the inverse (eq. 5.10).
  constexpr std::uint8_t m[4][4] = {
      {0x02, 0x03, 0x01, 0x01},
      {0x01, 0x02, 0x03, 0x01},
      {0x01, 0x01, 0x02, 0x03},
      {0x03, 0x01, 0x01, 0x02}};
  constexpr std::uint8_t im[4][4] = {
      {0x0e, 0x0b, 0x0d, 0x09},
      {0x09, 0x0e, 0x0b, 0x0d},
      {0x0d, 0x09, 0x0e, 0x0b},
      {0x0b, 0x0d, 0x09, 0x0e}};
  Tables t;
  for (int x = 0; x < 256; ++x) {
    const std::uint8_t s = kSBox[static_cast<std::size_t>(x)];
    const std::uint8_t is = kInvSBox[static_cast<std::size_t>(x)];
    for (int r = 0; r < 4; ++r) {
      t.enc[static_cast<std::size_t>(r)][static_cast<std::size_t>(x)] =
          pack(gf::mul(m[0][r], s), gf::mul(m[1][r], s), gf::mul(m[2][r], s),
               gf::mul(m[3][r], s));
      t.dec[static_cast<std::size_t>(r)][static_cast<std::size_t>(x)] =
          pack(gf::mul(im[0][r], is), gf::mul(im[1][r], is), gf::mul(im[2][r], is),
               gf::mul(im[3][r], is));
    }
  }
  return t;
}

const Tables& tables() noexcept {
  static const Tables t = make_tables();
  return t;
}

std::uint32_t load_word(std::span<const std::uint8_t> p, int c) noexcept {
  return pack(p[static_cast<std::size_t>(4 * c)], p[static_cast<std::size_t>(4 * c + 1)],
              p[static_cast<std::size_t>(4 * c + 2)], p[static_cast<std::size_t>(4 * c + 3)]);
}

void store_word(std::span<std::uint8_t> p, int c, std::uint32_t w) noexcept {
  for (int r = 0; r < 4; ++r)
    p[static_cast<std::size_t>(4 * c + r)] = static_cast<std::uint8_t>(w >> (8 * r));
}

constexpr std::uint8_t byte_of(std::uint32_t w, int r) noexcept {
  return static_cast<std::uint8_t>(w >> (8 * r));
}

}  // namespace

TTableRijndael::TTableRijndael(const Geometry& g, std::span<const std::uint8_t> key)
    : geom_(g) {
  if (g.nb != 4) throw std::invalid_argument("TTableRijndael: 128-bit blocks only");
  if (static_cast<int>(key.size()) != g.key_bytes())
    throw std::invalid_argument("TTableRijndael: key length does not match geometry");
  const auto sched = expand_key(g, key);
  const int words = g.schedule_words();
  enc_keys_.assign(sched.begin(), sched.end());
  dec_keys_.resize(static_cast<std::size_t>(words));
  // Equivalent inverse cipher: reverse round order and fold InvMixColumns
  // into every key except the first and last.
  for (int round = 0; round <= g.nr; ++round)
    for (int c = 0; c < 4; ++c) {
      std::uint32_t w = sched[static_cast<std::size_t>(4 * (g.nr - round) + c)];
      if (round != 0 && round != g.nr) w = inv_mix_column_word(w);
      dec_keys_[static_cast<std::size_t>(4 * round + c)] = w;
    }
}

void TTableRijndael::encrypt_block(std::span<const std::uint8_t> in,
                                 std::span<std::uint8_t> out) const noexcept {
  const Tables& t = tables();
  std::uint32_t s[4];
  for (int c = 0; c < 4; ++c) s[c] = load_word(in, c) ^ enc_keys_[static_cast<std::size_t>(c)];
  for (int round = 1; round < geom_.nr; ++round) {
    std::uint32_t n[4];
    for (int c = 0; c < 4; ++c)
      n[c] = t.enc[0][byte_of(s[c], 0)] ^ t.enc[1][byte_of(s[(c + 1) & 3], 1)] ^
             t.enc[2][byte_of(s[(c + 2) & 3], 2)] ^ t.enc[3][byte_of(s[(c + 3) & 3], 3)] ^
             enc_keys_[static_cast<std::size_t>(4 * round + c)];
    for (int c = 0; c < 4; ++c) s[c] = n[c];
  }
  for (int c = 0; c < 4; ++c) {
    const std::uint32_t w =
        pack(kSBox[byte_of(s[c], 0)], kSBox[byte_of(s[(c + 1) & 3], 1)],
             kSBox[byte_of(s[(c + 2) & 3], 2)], kSBox[byte_of(s[(c + 3) & 3], 3)]) ^
        enc_keys_[static_cast<std::size_t>(4 * geom_.nr + c)];
    store_word(out, c, w);
  }
}

void TTableRijndael::decrypt_block(std::span<const std::uint8_t> in,
                                 std::span<std::uint8_t> out) const noexcept {
  const Tables& t = tables();
  std::uint32_t s[4];
  for (int c = 0; c < 4; ++c) s[c] = load_word(in, c) ^ dec_keys_[static_cast<std::size_t>(c)];
  for (int round = 1; round < geom_.nr; ++round) {
    std::uint32_t n[4];
    for (int c = 0; c < 4; ++c)
      n[c] = t.dec[0][byte_of(s[c], 0)] ^ t.dec[1][byte_of(s[(c + 3) & 3], 1)] ^
             t.dec[2][byte_of(s[(c + 2) & 3], 2)] ^ t.dec[3][byte_of(s[(c + 1) & 3], 3)] ^
             dec_keys_[static_cast<std::size_t>(4 * round + c)];
    for (int c = 0; c < 4; ++c) s[c] = n[c];
  }
  for (int c = 0; c < 4; ++c) {
    const std::uint32_t w =
        pack(kInvSBox[byte_of(s[c], 0)], kInvSBox[byte_of(s[(c + 3) & 3], 1)],
             kInvSBox[byte_of(s[(c + 2) & 3], 2)], kInvSBox[byte_of(s[(c + 1) & 3], 3)]) ^
        dec_keys_[static_cast<std::size_t>(4 * geom_.nr + c)];
    store_word(out, c, w);
  }
}

}  // namespace aesip::aes
