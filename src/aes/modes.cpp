#include "aes/modes.hpp"

namespace aesip::aes {

std::vector<std::uint8_t> pkcs7_pad(std::span<const std::uint8_t> data) {
  const std::size_t pad = kBlock - (data.size() % kBlock);
  std::vector<std::uint8_t> out(data.begin(), data.end());
  out.insert(out.end(), pad, static_cast<std::uint8_t>(pad));
  return out;
}

std::vector<std::uint8_t> pkcs7_unpad(std::span<const std::uint8_t> data) {
  if (data.empty() || data.size() % kBlock != 0)
    throw std::invalid_argument("pkcs7: length not a positive multiple of the block size");
  const std::uint8_t pad = data.back();
  if (pad == 0 || pad > kBlock) throw std::invalid_argument("pkcs7: bad pad byte");
  for (std::size_t i = data.size() - pad; i < data.size(); ++i)
    if (data[i] != pad) throw std::invalid_argument("pkcs7: inconsistent padding");
  return std::vector<std::uint8_t>(data.begin(), data.end() - pad);
}

}  // namespace aesip::aes
