#include "aes/modes.hpp"

namespace aesip::aes {

std::vector<std::uint8_t> pkcs7_pad(std::span<const std::uint8_t> data) {
  const std::size_t pad = kBlock - (data.size() % kBlock);
  std::vector<std::uint8_t> out(data.begin(), data.end());
  out.insert(out.end(), pad, static_cast<std::uint8_t>(pad));
  return out;
}

std::array<std::uint8_t, kBlock> ctr_counter_at(
    std::span<const std::uint8_t, kBlock> initial_counter, std::uint64_t block_index) {
  std::array<std::uint8_t, kBlock> counter;
  for (std::size_t i = 0; i < kBlock; ++i) counter[i] = initial_counter[i];
  // Ripple the 64-bit offset into the big-endian counter, carrying through
  // all 16 bytes (the initial counter may sit anywhere in the 2^128 space).
  std::uint64_t carry = block_index;
  for (int i = static_cast<int>(kBlock) - 1; i >= 0 && carry != 0; --i) {
    const std::uint64_t sum = static_cast<std::uint64_t>(counter[i]) + (carry & 0xff);
    counter[i] = static_cast<std::uint8_t>(sum);
    carry = (carry >> 8) + (sum >> 8);
  }
  return counter;
}

std::vector<std::uint8_t> pkcs7_unpad(std::span<const std::uint8_t> data) {
  if (data.empty() || data.size() % kBlock != 0)
    throw std::invalid_argument("pkcs7: length not a positive multiple of the block size");
  const std::uint8_t pad = data.back();
  if (pad == 0 || pad > kBlock) throw std::invalid_argument("pkcs7: bad pad byte");
  for (std::size_t i = data.size() - pad; i < data.size(); ++i)
    if (data[i] != pad) throw std::invalid_argument("pkcs7: inconsistent padding");
  return std::vector<std::uint8_t>(data.begin(), data.end() - pad);
}

}  // namespace aesip::aes
