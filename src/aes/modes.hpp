// Block-cipher modes of operation (ECB, CBC, CTR) with PKCS#7 padding.
//
// The modes are generic over any 128-bit block cipher exposing
// encrypt_block/decrypt_block over 16-byte spans — the reference Aes128,
// the T-table engine, and (deliberately) the cycle-accurate hardware IP
// model all satisfy the concept, so the examples can run CBC traffic
// through the simulated FPGA core.
#pragma once

#include <array>
#include <concepts>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace aesip::aes {

template <typename C>
concept BlockCipher128 = requires(const C& c, std::span<const std::uint8_t> in,
                                  std::span<std::uint8_t> out) {
  { c.encrypt_block(in, out) };
};

template <typename C>
concept BlockDecipher128 = requires(const C& c, std::span<const std::uint8_t> in,
                                    std::span<std::uint8_t> out) {
  { c.decrypt_block(in, out) };
};

inline constexpr std::size_t kBlock = 16;

/// Append PKCS#7 padding (always adds 1..16 bytes, so unpad is unambiguous).
std::vector<std::uint8_t> pkcs7_pad(std::span<const std::uint8_t> data);

/// Strip PKCS#7 padding; throws std::invalid_argument on malformed padding.
std::vector<std::uint8_t> pkcs7_unpad(std::span<const std::uint8_t> data);

/// ECB over whole blocks. Precondition: data.size() % 16 == 0.
template <BlockCipher128 C>
std::vector<std::uint8_t> ecb_encrypt(const C& cipher, std::span<const std::uint8_t> data) {
  if (data.size() % kBlock != 0) throw std::invalid_argument("ecb: partial block");
  std::vector<std::uint8_t> out(data.size());
  for (std::size_t off = 0; off < data.size(); off += kBlock)
    cipher.encrypt_block(data.subspan(off, kBlock),
                         std::span<std::uint8_t>(out).subspan(off, kBlock));
  return out;
}

template <BlockDecipher128 C>
std::vector<std::uint8_t> ecb_decrypt(const C& cipher, std::span<const std::uint8_t> data) {
  if (data.size() % kBlock != 0) throw std::invalid_argument("ecb: partial block");
  std::vector<std::uint8_t> out(data.size());
  for (std::size_t off = 0; off < data.size(); off += kBlock)
    cipher.decrypt_block(data.subspan(off, kBlock),
                         std::span<std::uint8_t>(out).subspan(off, kBlock));
  return out;
}

/// CBC over whole blocks (callers pad first when needed).
template <BlockCipher128 C>
std::vector<std::uint8_t> cbc_encrypt(const C& cipher, std::span<const std::uint8_t, kBlock> iv,
                                      std::span<const std::uint8_t> data) {
  if (data.size() % kBlock != 0) throw std::invalid_argument("cbc: partial block");
  std::vector<std::uint8_t> out(data.size());
  std::uint8_t chain[kBlock];
  for (std::size_t i = 0; i < kBlock; ++i) chain[i] = iv[i];
  for (std::size_t off = 0; off < data.size(); off += kBlock) {
    std::uint8_t x[kBlock];
    for (std::size_t i = 0; i < kBlock; ++i)
      x[i] = static_cast<std::uint8_t>(data[off + i] ^ chain[i]);
    cipher.encrypt_block(x, std::span<std::uint8_t>(out).subspan(off, kBlock));
    for (std::size_t i = 0; i < kBlock; ++i) chain[i] = out[off + i];
  }
  return out;
}

template <BlockDecipher128 C>
std::vector<std::uint8_t> cbc_decrypt(const C& cipher, std::span<const std::uint8_t, kBlock> iv,
                                      std::span<const std::uint8_t> data) {
  if (data.size() % kBlock != 0) throw std::invalid_argument("cbc: partial block");
  std::vector<std::uint8_t> out(data.size());
  std::uint8_t chain[kBlock];
  for (std::size_t i = 0; i < kBlock; ++i) chain[i] = iv[i];
  for (std::size_t off = 0; off < data.size(); off += kBlock) {
    std::uint8_t plain[kBlock];
    cipher.decrypt_block(data.subspan(off, kBlock), plain);
    for (std::size_t i = 0; i < kBlock; ++i) {
      out[off + i] = static_cast<std::uint8_t>(plain[i] ^ chain[i]);
      chain[i] = data[off + i];
    }
  }
  return out;
}

/// Counter block for the CTR keystream position `block_index` blocks past
/// `initial_counter` — big-endian addition over the full 128 bits (the same
/// convention ctr_crypt increments with). This is what makes CTR chunkable:
/// byte range [16*i, 16*j) of a message can be processed independently by
/// starting a fresh ctr_crypt at ctr_counter_at(iv, i), so a scheduler can
/// fan one payload out across many cores and splice the pieces back
/// together.
std::array<std::uint8_t, kBlock> ctr_counter_at(
    std::span<const std::uint8_t, kBlock> initial_counter, std::uint64_t block_index);

/// CTR mode: the counter block is big-endian-incremented over its full 128
/// bits (the SP 800-38A example convention). Works on any length; CTR needs
/// only the forward cipher for both directions.
template <BlockCipher128 C>
std::vector<std::uint8_t> ctr_crypt(const C& cipher,
                                    std::span<const std::uint8_t, kBlock> initial_counter,
                                    std::span<const std::uint8_t> data) {
  std::vector<std::uint8_t> out(data.size());
  std::uint8_t counter[kBlock];
  for (std::size_t i = 0; i < kBlock; ++i) counter[i] = initial_counter[i];
  std::uint8_t keystream[kBlock];
  for (std::size_t off = 0; off < data.size(); off += kBlock) {
    cipher.encrypt_block(counter, keystream);
    const std::size_t n = data.size() - off < kBlock ? data.size() - off : kBlock;
    for (std::size_t i = 0; i < n; ++i)
      out[off + i] = static_cast<std::uint8_t>(data[off + i] ^ keystream[i]);
    for (int i = static_cast<int>(kBlock) - 1; i >= 0; --i)
      if (++counter[i] != 0) break;
  }
  return out;
}

}  // namespace aesip::aes
