// Rijndael key expansion (FIPS-197 §5.2, the paper's "Round Key Function").
//
// The expanded schedule is Nb*(Nr+1) 32-bit words.  The hardware IP never
// stores this array — it regenerates round keys on the fly with the KStran
// unit — but the reference expansion is the specification both are tested
// against, and it provides the "previous generation" baseline the paper's
// area argument is made against.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace aesip::aes {

/// Cipher geometry: Nb = block words, Nk = key words, Nr = rounds.
struct Geometry {
  int nb;  ///< block size / 32  (4, 6 or 8)
  int nk;  ///< key size / 32    (4, 6 or 8)
  int nr;  ///< number of rounds = max(nb, nk) + 6

  static constexpr Geometry make(int block_bits, int key_bits) noexcept {
    const int nb = block_bits / 32;
    const int nk = key_bits / 32;
    const int nr = (nb > nk ? nb : nk) + 6;
    return Geometry{nb, nk, nr};
  }

  constexpr int schedule_words() const noexcept { return nb * (nr + 1); }
  constexpr int block_bytes() const noexcept { return 4 * nb; }
  constexpr int key_bytes() const noexcept { return 4 * nk; }
};

/// KStran (paper Fig. 3): the transformation applied to the last word of the
/// previous key block when crossing an Nk boundary —
/// RotWord, then SubWord (4 S-box lookups), then XOR with rcon(round).
std::uint32_t kstran(std::uint32_t w, int round) noexcept;

/// Full expansion of `key` (4*Nk bytes) into Nb*(Nr+1) words.  Words are
/// packed little-endian byte 0 first, matching State::column_word.
std::vector<std::uint32_t> expand_key(const Geometry& g, std::span<const std::uint8_t> key);

/// Round key `round` (0..Nr) of an expanded schedule as 4*Nb bytes,
/// column-major — the layout add_round_key consumes.
std::vector<std::uint8_t> round_key_bytes(const Geometry& g,
                                          std::span<const std::uint32_t> schedule, int round);

}  // namespace aesip::aes
