// The Rijndael state: a 4-row by Nb-column matrix of bytes (the paper's
// `state_t`, Figure 1).
//
// AES fixes Nb = 4 (128-bit blocks); full Rijndael also allows Nb = 6 and
// Nb = 8 (192/256-bit blocks).  Bytes map to the matrix column-major:
// state(r, c) = input[4*c + r], exactly as in FIPS-197 §3.4.
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>
#include <span>
#include <string>

namespace aesip::aes {

/// Number of 32-bit columns for a given block size in bits (128/192/256).
constexpr int columns_for_block_bits(int bits) noexcept { return bits / 32; }

class State {
 public:
  static constexpr int kRows = 4;
  static constexpr int kMaxColumns = 8;

  /// An all-zero state with `nb` columns (nb in {4, 6, 8}).
  explicit State(int nb) noexcept : nb_(nb), bytes_{} {}

  /// Load from a byte block of 4*nb bytes.
  State(int nb, std::span<const std::uint8_t> block) noexcept : nb_(nb), bytes_{} {
    for (std::size_t i = 0; i < static_cast<std::size_t>(4 * nb_); ++i) bytes_[i] = block[i];
  }

  int columns() const noexcept { return nb_; }
  int size_bytes() const noexcept { return 4 * nb_; }

  std::uint8_t at(int row, int col) const noexcept {
    return bytes_[static_cast<std::size_t>(4 * col + row)];
  }
  void set(int row, int col, std::uint8_t v) noexcept {
    bytes_[static_cast<std::size_t>(4 * col + row)] = v;
  }

  /// Column c as a 32-bit word, byte 0 (row 0) in the low byte.
  std::uint32_t column_word(int c) const noexcept {
    std::uint32_t w = 0;
    for (int r = 0; r < kRows; ++r)
      w |= static_cast<std::uint32_t>(at(r, c)) << (8 * r);
    return w;
  }
  void set_column_word(int c, std::uint32_t w) noexcept {
    for (int r = 0; r < kRows; ++r)
      set(r, c, static_cast<std::uint8_t>(w >> (8 * r)));
  }

  /// Serialize back to the byte block (column-major order).
  void store(std::span<std::uint8_t> out) const noexcept {
    for (std::size_t i = 0; i < static_cast<std::size_t>(4 * nb_); ++i) out[i] = bytes_[i];
  }

  /// Raw access over the active 4*nb bytes.
  std::span<const std::uint8_t> bytes() const noexcept {
    return std::span<const std::uint8_t>(bytes_.data(), static_cast<std::size_t>(4 * nb_));
  }
  std::span<std::uint8_t> bytes() noexcept {
    return std::span<std::uint8_t>(bytes_.data(), static_cast<std::size_t>(4 * nb_));
  }

  bool operator==(const State& rhs) const noexcept {
    if (nb_ != rhs.nb_) return false;
    for (int i = 0; i < 4 * nb_; ++i)
      if (bytes_[static_cast<std::size_t>(i)] != rhs.bytes_[static_cast<std::size_t>(i)])
        return false;
    return true;
  }

  /// Hex rendering (for test failure messages and the trace examples).
  std::string to_hex() const;

 private:
  int nb_;
  std::array<std::uint8_t, kRows * kMaxColumns> bytes_;
};

}  // namespace aesip::aes
