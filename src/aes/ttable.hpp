// T-table AES-128: the classic 32-bit software formulation.
//
// SubBytes + ShiftRows + MixColumns collapse into four 256-entry tables of
// 32-bit words; one round is 16 lookups and 16 XORs.  This is the software
// baseline the paper's introduction alludes to ("running cryptography
// algorithms in general software") and the comparison point for the
// bench_software harness.  Decryption uses the equivalent inverse cipher
// (FIPS-197 §5.3.5) with InvMixColumns folded into the round keys.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace aesip::aes {

class TTableAes128 {
 public:
  static constexpr int kBlockBytes = 16;
  static constexpr int kRounds = 10;

  explicit TTableAes128(std::span<const std::uint8_t> key);

  void encrypt_block(std::span<const std::uint8_t> in, std::span<std::uint8_t> out) const noexcept;
  void decrypt_block(std::span<const std::uint8_t> in, std::span<std::uint8_t> out) const noexcept;

 private:
  std::array<std::uint32_t, 44> enc_keys_;
  std::array<std::uint32_t, 44> dec_keys_;  // equivalent-inverse-cipher keys
};

}  // namespace aesip::aes
