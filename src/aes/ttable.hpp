// T-table Rijndael (128-bit block): the classic 32-bit software formulation.
//
// SubBytes + ShiftRows + MixColumns collapse into four 256-entry tables of
// 32-bit words; one round is 16 lookups and 16 XORs.  This is the software
// baseline the paper's introduction alludes to ("running cryptography
// algorithms in general software") and the comparison point for the
// bench_software harness.  Decryption uses the equivalent inverse cipher
// (FIPS-197 §5.3.5) with InvMixColumns folded into the round keys.
//
// The table formulation only depends on the 128-bit *block*; the key size
// enters through the expanded schedule alone, so one class covers AES-128,
// -192 and -256 (Nk = 4/6/8, Nr = Nk + 6).  `TTableAes128` remains as an
// alias for the original call sites.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "aes/key_schedule.hpp"

namespace aesip::aes {

class TTableRijndael {
 public:
  static constexpr int kBlockBytes = 16;

  /// Geometry is inferred from the key length (16/24/32 bytes).
  explicit TTableRijndael(std::span<const std::uint8_t> key)
      : TTableRijndael(Geometry::make(128, static_cast<int>(key.size()) * 8), key) {}
  TTableRijndael(const Geometry& g, std::span<const std::uint8_t> key);

  const Geometry& geometry() const noexcept { return geom_; }
  int rounds() const noexcept { return geom_.nr; }

  void encrypt_block(std::span<const std::uint8_t> in, std::span<std::uint8_t> out) const noexcept;
  void decrypt_block(std::span<const std::uint8_t> in, std::span<std::uint8_t> out) const noexcept;

 private:
  Geometry geom_;
  std::vector<std::uint32_t> enc_keys_;  // Nb*(Nr+1) words
  std::vector<std::uint32_t> dec_keys_;  // equivalent-inverse-cipher keys
};

/// The historical AES-128-only name; same class, geometry inferred.
using TTableAes128 = TTableRijndael;

}  // namespace aesip::aes
