#include "aes/cipher.hpp"

#include "aes/transforms.hpp"

namespace aesip::aes {

Rijndael::Rijndael(const Geometry& g, std::span<const std::uint8_t> key)
    : geometry_(g), schedule_(expand_key(g, key)) {}

void Rijndael::encrypt_block(std::span<const std::uint8_t> in, std::span<std::uint8_t> out,
                             RoundObserver observer, void* user) const {
  State s(geometry_.nb, in);
  add_round_key(s, round_key_bytes(geometry_, schedule_, 0));
  if (observer) observer(0, s, user);
  for (int round = 1; round < geometry_.nr; ++round) {
    sub_bytes(s);
    shift_rows(s);
    mix_columns(s);
    add_round_key(s, round_key_bytes(geometry_, schedule_, round));
    if (observer) observer(round, s, user);
  }
  sub_bytes(s);
  shift_rows(s);
  add_round_key(s, round_key_bytes(geometry_, schedule_, geometry_.nr));
  if (observer) observer(geometry_.nr, s, user);
  s.store(out);
}

void Rijndael::decrypt_block(std::span<const std::uint8_t> in, std::span<std::uint8_t> out,
                             RoundObserver observer, void* user) const {
  State s(geometry_.nb, in);
  add_round_key(s, round_key_bytes(geometry_, schedule_, geometry_.nr));
  if (observer) observer(0, s, user);
  for (int round = geometry_.nr - 1; round >= 1; --round) {
    inv_shift_rows(s);
    inv_sub_bytes(s);
    add_round_key(s, round_key_bytes(geometry_, schedule_, round));
    inv_mix_columns(s);
    if (observer) observer(geometry_.nr - round, s, user);
  }
  inv_shift_rows(s);
  inv_sub_bytes(s);
  add_round_key(s, round_key_bytes(geometry_, schedule_, 0));
  if (observer) observer(geometry_.nr, s, user);
  s.store(out);
}

}  // namespace aesip::aes
