#include "report/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace aesip::report {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size())
    throw std::invalid_argument("report::Table: row width mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::fixed(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

std::string Table::count_pct(std::size_t value, double pct) {
  std::ostringstream os;
  os << value << "/" << std::fixed << std::setprecision(0) << pct << "%";
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      if (row[c].size() > width[c]) width[c] = row[c].size();

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (const std::size_t w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace aesip::report
