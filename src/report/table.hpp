// Plain-text / CSV table rendering for the bench harnesses.
//
// Every bench that regenerates one of the paper's tables prints it through
// this so the output lines up with the paper's rows for eyeball and diff
// comparison.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace aesip::report {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience formatting helpers.
  static std::string fixed(double v, int decimals);
  static std::string count_pct(std::size_t value, double pct);

  /// Render with aligned columns and a rule under the header.
  void print(std::ostream& os) const;
  /// Render as CSV (no escaping needed for our content).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace aesip::report
