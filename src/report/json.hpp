// Minimal streaming JSON writer for machine-readable bench/stats output.
//
// The repo's perf trajectory is tracked across PRs by diffing BENCH_*.json
// files, so the writer favours determinism: keys are emitted in call order,
// floating-point values are printed with %.6g, and there is no dependency
// beyond <ostream>. Usage:
//
//   report::JsonWriter j(os);
//   j.begin_object();
//     j.key("workers").value(4);
//     j.key("runs").begin_array();
//       j.begin_object(); ... j.end_object();
//     j.end_array();
//   j.end_object();
//
// The writer inserts commas and newline/indentation itself; mismatched
// begin/end pairs are the caller's bug (assert-checked in debug builds).
#pragma once

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace aesip::report {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}
  ~JsonWriter() { assert(stack_.empty()); }

  JsonWriter& begin_object() { return open('{'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('['); }
  JsonWriter& end_array() { return close(']'); }

  JsonWriter& key(std::string_view k) {
    separate();
    write_string(k);
    os_ << ": ";
    just_wrote_key_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    separate();
    write_string(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v) {
    separate();
    os_ << (v ? "true" : "false");
    return *this;
  }
  JsonWriter& value(double v) {
    separate();
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    os_ << buf;
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    separate();
    os_ << v;
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    separate();
    os_ << v;
    return *this;
  }
  /// Any other integral type funnels into the 64-bit overloads.
  template <typename T>
    requires std::is_integral_v<T>
  JsonWriter& value(T v) {
    if constexpr (std::is_signed_v<T>)
      return value(static_cast<std::int64_t>(v));
    else
      return value(static_cast<std::uint64_t>(v));
  }

 private:
  JsonWriter& open(char c) {
    separate();
    os_ << c;
    stack_.push_back(c);
    first_in_scope_ = true;
    return *this;
  }

  JsonWriter& close(char c) {
    assert(!stack_.empty());
    stack_.pop_back();
    os_ << '\n';
    indent();
    os_ << c;
    first_in_scope_ = false;
    if (stack_.empty()) os_ << '\n';
    return *this;
  }

  /// Comma/newline bookkeeping before any value, key or opening bracket.
  void separate() {
    if (just_wrote_key_) {
      just_wrote_key_ = false;
      return;  // value sits on the key's line
    }
    if (stack_.empty()) return;  // the root value
    if (!first_in_scope_) os_ << ',';
    os_ << '\n';
    indent();
    first_in_scope_ = false;
  }

  void indent() {
    for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
  }

  void write_string(std::string_view s) {
    os_ << '"';
    for (const char c : s) {
      switch (c) {
        case '"': os_ << "\\\""; break;
        case '\\': os_ << "\\\\"; break;
        case '\n': os_ << "\\n"; break;
        case '\t': os_ << "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            os_ << buf;
          } else {
            os_ << c;
          }
      }
    }
    os_ << '"';
  }

  std::ostream& os_;
  std::vector<char> stack_;
  bool first_in_scope_ = true;
  bool just_wrote_key_ = false;
};

/// Current version of the common BENCH_*.json envelope (see
/// docs/benchmarks.md and tools/check_bench.sh, which validates it).
inline constexpr std::string_view kBenchSchema = "aesip-bench-v1";

/// Best-effort provenance for bench output: the short git revision of the
/// tree the bench ran from. Tries `git rev-parse` in the working directory
/// (benches run from the build tree, inside the repo), then the
/// AESIP_GIT_REV environment variable, then "unknown". Never throws.
inline std::string git_revision() {
#if defined(__unix__) || defined(__APPLE__)
  if (FILE* p = ::popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buf[64] = {};
    const bool got = std::fgets(buf, sizeof buf, p) != nullptr;
    const int status = ::pclose(p);
    if (got && status == 0) {
      std::string rev(buf);
      while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r')) rev.pop_back();
      if (!rev.empty()) return rev;
    }
  }
#endif
  if (const char* env = std::getenv("AESIP_GIT_REV"); env && *env) return env;
  return "unknown";
}

/// Open the common bench envelope every BENCH_*.json shares:
///
///   {
///     "schema": "aesip-bench-v1",       // the envelope shape
///     "bench": "<name>",                // which bench wrote the file
///     "bench_schema_version": N,        // version of the payload keys
///     "git_rev": "<short hash>",        // provenance
///     "config": { ... }                 // <- caller writes this object next
///     ... payload ...
///   }
///
/// Leaves the root object open with the "config" key pending: the caller
/// MUST immediately write the config object, then its payload keys, then
/// end_object() the root.
inline void begin_bench_envelope(JsonWriter& j, std::string_view bench, int schema_version) {
  j.begin_object();
  j.key("schema").value(kBenchSchema);
  j.key("bench").value(bench);
  j.key("bench_schema_version").value(schema_version);
  j.key("git_rev").value(git_revision());
  j.key("config");
}

}  // namespace aesip::report
