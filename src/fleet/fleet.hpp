// Fleet management: the farm as a *mutable* population of cores.
//
// Everything below the farm treats a worker's engine as fixed for the
// process lifetime. This layer drops that assumption and manages the farm
// the way an operator manages a rack of FPGA boards:
//
//   * FleetController — the admin facade: hot-swap a worker's engine
//     (sw <-> behavioral <-> netlist) under live traffic, quarantine and
//     resume workers, inject faults, and snapshot fleet health. It is a
//     thin blocking wrapper over Farm's future-based control plane, shaped
//     for the wire admin opcodes (net::Server) and the `aesip fleet` CLI.
//
//   * ChaosInjector — SEU-driven chaos testing: flips netlist DFF state in
//     a live NetlistEngine mid-traffic. Sites are chosen from the shared
//     gate netlist by standby-upset classification (seu/live.hpp), so an
//     injection is *provably corrupting* — exactly the fault the farm's
//     spot-check policy must catch and heal. Deterministic per seed.
//
// Thread safety: FleetController and ChaosInjector are plain call-through
// objects over Farm's thread-safe control plane; each instance may be used
// from one thread at a time (the server's event loop, a CLI, a test).
#pragma once

#include <cstdint>
#include <ostream>
#include <random>
#include <string>
#include <vector>

#include "farm/farm.hpp"

namespace aesip::fleet {

/// One worker's health row in a fleet snapshot.
struct WorkerStatus {
  int worker = -1;
  std::string engine;
  bool enabled = true;
  std::uint64_t blocks = 0;
};

/// Point-in-time fleet health: the reconfiguration counters plus one row
/// per worker. A plain value — safe to serialize off the snapshot thread.
struct FleetStatus {
  std::string node;  ///< cluster node id ("" when not clustered) — labels roll-up rows
  int workers = 0;
  int workers_enabled = 0;
  std::string batch_backend = "none";  ///< lane backend behind the workers' batch path
  std::size_t batch_lanes = 1;         ///< blocks per engine pass on that backend
  std::uint64_t swaps = 0;
  std::uint64_t heals = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t spot_checks = 0;
  std::uint64_t spot_mismatches = 0;
  std::uint64_t replayed_jobs = 0;
  std::uint64_t spot_boosts = 0;       ///< adaptive controller: boost episodes entered
  std::uint64_t spot_boost_checks = 0; ///< checks sampled at the boosted rate
  int workers_boosted = 0;             ///< gauge: workers currently boosted
  std::uint64_t sessions_migrated = 0;
  double swap_pause_p50_us = 0;
  double swap_pause_max_us = 0;
  std::vector<WorkerStatus> per_worker;

  std::string report() const;
  void write_json(std::ostream& os) const;
};

/// Blocking admin facade over the farm's control plane.
class FleetController {
 public:
  explicit FleetController(farm::Farm& farm) : farm_(farm) {}

  /// Hot-swap one worker's engine; blocks until the worker executed it.
  farm::SwapReport swap(int worker, engine::EngineKind kind) {
    return farm_.swap_engine(worker, kind).get();
  }
  /// Hot-swap one worker to a specific round-engine variant of `kind`
  /// (e.g. netlist pipe5-xtime); see arch::VariantSpec::parse for names.
  farm::SwapReport swap(int worker, engine::EngineKind kind, const arch::VariantSpec& variant) {
    return farm_.swap_engine(worker, kind, variant).get();
  }
  /// Swap every worker: all control jobs are queued first (the swaps
  /// overlap), then joined. The farm never drains.
  std::vector<farm::SwapReport> swap_all(engine::EngineKind kind);
  /// Swap every worker to one variant of `kind`, overlapped the same way.
  std::vector<farm::SwapReport> swap_all(engine::EngineKind kind,
                                         const arch::VariantSpec& variant);

  void quarantine(int worker) { farm_.set_worker_enabled(worker, false); }
  void resume(int worker) { farm_.set_worker_enabled(worker, true); }

  /// Flip DFF `site` in `worker`'s live engine; false when the engine kind
  /// has no gate-level state (sw/behavioral).
  bool inject(int worker, std::size_t site) { return farm_.inject_fault(worker, site).get(); }

  FleetStatus status() const;

  farm::Farm& farm() noexcept { return farm_; }

 private:
  farm::Farm& farm_;
};

/// SEU-driven chaos: inject corrupting standby upsets into live engines.
class ChaosInjector {
 public:
  /// Sentinel: pick a classified-corrupting site automatically.
  static constexpr std::size_t kAutoSite = ~std::size_t{0};

  struct Event {
    int worker = -1;
    std::size_t site = 0;
    bool injected = false;  ///< false when the target engine had no state to flip
  };

  ChaosInjector(farm::Farm& farm, std::uint32_t seed) : farm_(farm), rng_(seed) {}

  /// Flip state in `worker`'s engine (-1 = random worker). With kAutoSite
  /// the site comes from a lazily-built list of standby-corrupting DFFs on
  /// the farm's shared netlist; a farm that never built a netlist engine
  /// gets site 0 (and `injected` reports whether anything flipped).
  Event inject(int worker = -1, std::size_t site = kAutoSite);

  /// A standby-corrupting DFF site on the farm's shared netlist (the list
  /// is classified lazily on first call); 0 when no netlist exists. Public
  /// so async callers (the server's admin plane) can pair it with
  /// Farm::inject_fault directly instead of blocking in inject().
  std::size_t corrupting_site();

  const std::vector<Event>& events() const noexcept { return events_; }

 private:
  farm::Farm& farm_;
  std::mt19937 rng_;
  bool sites_scanned_ = false;
  std::vector<std::size_t> corrupting_sites_;
  std::vector<Event> events_;
};

}  // namespace aesip::fleet
