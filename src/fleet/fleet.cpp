#include "fleet/fleet.hpp"

#include <cstdio>

#include "report/json.hpp"
#include "seu/live.hpp"

namespace aesip::fleet {

// --- FleetController ---------------------------------------------------------

std::vector<farm::SwapReport> FleetController::swap_all(engine::EngineKind kind) {
  return swap_all(kind, arch::VariantSpec{});
}

std::vector<farm::SwapReport> FleetController::swap_all(engine::EngineKind kind,
                                                        const arch::VariantSpec& variant) {
  std::vector<std::future<farm::SwapReport>> futures;
  futures.reserve(static_cast<std::size_t>(farm_.config().workers));
  for (int w = 0; w < farm_.config().workers; ++w)
    futures.push_back(farm_.swap_engine(w, kind, variant));
  std::vector<farm::SwapReport> reports;
  reports.reserve(futures.size());
  for (auto& f : futures) reports.push_back(f.get());
  return reports;
}

FleetStatus FleetController::status() const {
  const farm::FarmStats s = farm_.stats();
  FleetStatus st;
  st.workers = s.workers;
  st.workers_enabled = s.workers_enabled;
  st.batch_backend = s.batch_backend;
  st.batch_lanes = s.batch_lanes;
  st.swaps = s.swaps;
  st.heals = s.heals;
  st.quarantines = s.quarantines;
  st.spot_checks = s.spot_checks;
  st.spot_mismatches = s.spot_mismatches;
  st.replayed_jobs = s.replayed_jobs;
  st.spot_boosts = s.spot_boosts;
  st.spot_boost_checks = s.spot_boost_checks;
  st.workers_boosted = s.workers_boosted;
  st.sessions_migrated = s.sessions_migrated;
  st.swap_pause_p50_us = static_cast<double>(s.swap_pause_us.percentile(0.50));
  st.swap_pause_max_us = static_cast<double>(s.swap_pause_us.max);
  st.per_worker.reserve(s.per_worker.size());
  for (std::size_t i = 0; i < s.per_worker.size(); ++i) {
    WorkerStatus w;
    w.worker = static_cast<int>(i);
    w.engine = s.per_worker[i].engine;
    w.enabled = s.per_worker[i].enabled;
    w.blocks = s.per_worker[i].blocks;
    st.per_worker.push_back(std::move(w));
  }
  return st;
}

std::string FleetStatus::report() const {
  char line[192];
  std::string out;
  const auto add = [&](const char* fmt, auto... args) {
    std::snprintf(line, sizeof line, fmt, args...);
    out += line;
  };
  add("fleet%s%s: %d workers (%d enabled), %llu swaps, %llu heals, %llu quarantines\n",
      node.empty() ? "" : "@", node.c_str(), workers, workers_enabled,
      static_cast<unsigned long long>(swaps),
      static_cast<unsigned long long>(heals), static_cast<unsigned long long>(quarantines));
  add("  batch:      %s backend, %zu lanes per engine pass\n", batch_backend.c_str(),
      batch_lanes);
  add("  spot-check: %llu checked, %llu mismatched, %llu replayed; %llu sessions migrated\n",
      static_cast<unsigned long long>(spot_checks),
      static_cast<unsigned long long>(spot_mismatches),
      static_cast<unsigned long long>(replayed_jobs),
      static_cast<unsigned long long>(sessions_migrated));
  if (spot_boosts)
    add("  adaptive:   %llu boosts, %llu boosted checks, %d workers boosted now\n",
        static_cast<unsigned long long>(spot_boosts),
        static_cast<unsigned long long>(spot_boost_checks), workers_boosted);
  if (swaps || heals)
    add("  swap pause: p50 %.0f us, max %.0f us\n", swap_pause_p50_us, swap_pause_max_us);
  for (const auto& w : per_worker)
    add("  worker %2d: %-10s %8llu blocks%s\n", w.worker, w.engine.c_str(),
        static_cast<unsigned long long>(w.blocks), w.enabled ? "" : "  [quarantined]");
  return out;
}

void FleetStatus::write_json(std::ostream& os) const {
  report::JsonWriter j(os);
  j.begin_object();
  if (!node.empty()) j.key("node").value(node);
  j.key("workers").value(workers);
  j.key("workers_enabled").value(workers_enabled);
  j.key("batch_backend").value(batch_backend);
  j.key("batch_lanes").value(batch_lanes);
  j.key("swaps").value(swaps);
  j.key("heals").value(heals);
  j.key("quarantines").value(quarantines);
  j.key("spot_checks").value(spot_checks);
  j.key("spot_mismatches").value(spot_mismatches);
  j.key("replayed_jobs").value(replayed_jobs);
  j.key("spot_boosts").value(spot_boosts);
  j.key("spot_boost_checks").value(spot_boost_checks);
  j.key("workers_boosted").value(workers_boosted);
  j.key("sessions_migrated").value(sessions_migrated);
  j.key("swap_pause_p50_us").value(swap_pause_p50_us);
  j.key("swap_pause_max_us").value(swap_pause_max_us);
  j.key("per_worker").begin_array();
  for (const auto& w : per_worker) {
    j.begin_object();
    j.key("worker").value(w.worker);
    j.key("engine").value(w.engine);
    j.key("enabled").value(w.enabled);
    j.key("blocks").value(w.blocks);
    j.end_object();
  }
  j.end_array();
  j.end_object();
}

// --- ChaosInjector -----------------------------------------------------------

std::size_t ChaosInjector::corrupting_site() {
  if (!sites_scanned_) {
    sites_scanned_ = true;
    // Classify a handful of provably-corrupting standby sites on the shared
    // gate graph (deterministic per seed). The scan is the expensive step,
    // so it runs once and only if a netlist exists to scan.
    if (const auto nl = farm_.shared_netlist())
      corrupting_sites_ = seu::find_standby_sites(*nl, seu::StandbyEffect::kCorrupting,
                                                  /*count=*/4, rng_());
  }
  if (corrupting_sites_.empty()) return 0;  // nothing classified: inject() reports the truth
  return corrupting_sites_[rng_() % corrupting_sites_.size()];
}

ChaosInjector::Event ChaosInjector::inject(int worker, std::size_t site) {
  Event e;
  e.worker = worker >= 0 ? worker
                         : static_cast<int>(rng_() % static_cast<std::uint32_t>(
                                                         farm_.config().workers));
  e.site = site == kAutoSite ? corrupting_site() : site;
  e.injected = farm_.inject_fault(e.worker, e.site).get();
  events_.push_back(e);
  return e;
}

}  // namespace aesip::fleet
