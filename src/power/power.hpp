// Power analysis of the IP — the paper's proposed future work.
//
// Section 6: "As future work, we propose a power analysis of the
// architecture.  As one of the possible applications area mobile systems,
// this feature is very interesting."  This module implements that
// analysis with the standard activity-based CMOS model:
//
//   P_dyn = 0.5 * Vdd^2 * f * sum_over_nets( C_net * toggles_per_cycle )
//
// Switching activity is *measured*, not guessed: a representative workload
// runs through the gate-level netlist in the functional evaluator while a
// probe counts every net transition.  Net capacitance follows the same
// structural information the timing model uses (gate output + per-fanout
// routing), with extra terms for ROM accesses, the clock tree (one load
// per flip-flop) and I/O pads.  Per-family electrical constants reflect
// the 2.5 V / 0.22 um Acex 1K and 1.5 V / 0.13 um Cyclone processes.
#pragma once

#include <cstdint>

#include "fpga/device.hpp"
#include "netlist/netlist.hpp"

namespace aesip::power {

/// Electrical constants of a device family.
struct PowerParams {
  double vdd;                 ///< core supply voltage (V)
  double c_gate_pf;           ///< LUT/LE output capacitance (pF)
  double c_route_pf;          ///< routing capacitance per fanout (pF)
  double c_clock_pf;          ///< clock-tree capacitance per flip-flop (pF)
  double c_io_pf;             ///< pad capacitance per switching I/O (pF)
  double e_rom_access_pj;     ///< energy per asynchronous ROM read (pJ)
  double static_mw;           ///< leakage + standby (mW)
};

/// Acex 1K: 2.5 V, 0.22 um — leaky pads, heavy interconnect.
const PowerParams& acex1k_power();
/// Cyclone: 1.5 V, 0.13 um — the voltage term alone cuts energy ~2.8x.
const PowerParams& cyclone_power();
/// Params for a device from the fpga:: database.
const PowerParams& params_for(const fpga::Device& device);

/// Switching-activity measurement over a workload.
struct Activity {
  std::uint64_t cycles = 0;
  std::uint64_t net_toggles = 0;      ///< all net transitions observed
  std::uint64_t ff_toggles = 0;       ///< transitions on flip-flop outputs
  std::uint64_t rom_reads = 0;        ///< address-change-triggered reads
  std::uint64_t io_toggles = 0;       ///< transitions on port nets
  double weighted_cap_pf = 0.0;       ///< sum of C_net over all toggles
};

/// Probe that accumulates activity; attach to a netlist + evaluator run.
class ActivityProbe {
 public:
  ActivityProbe(const netlist::Netlist& nl, const PowerParams& params);

  /// Record one clock cycle's transitions (call after every clock()).
  void sample(std::span<const std::uint8_t> net_values);

  const Activity& activity() const noexcept { return activity_; }

 private:
  const netlist::Netlist& nl_;
  const PowerParams& params_;
  Activity activity_;
  std::vector<std::uint8_t> previous_;
  std::vector<float> net_cap_pf_;     ///< per-net capacitance
  std::vector<std::uint8_t> is_ff_out_;
  std::vector<std::uint8_t> is_io_;
  std::vector<std::int32_t> rom_of_net_;  ///< ROM index driven by addr net, else -1
  std::size_t ff_count_ = 0;
};

/// Power estimate at a given clock frequency.
struct PowerReport {
  double clock_mhz = 0.0;
  double logic_mw = 0.0;      ///< LUT/gate output switching
  double routing_mw = 0.0;    ///< folded into logic via weighted cap; kept for breakdown
  double clock_mw = 0.0;      ///< clock tree (toggles every cycle)
  double memory_mw = 0.0;     ///< ROM access energy
  double io_mw = 0.0;         ///< pad switching
  double static_mw = 0.0;
  double total_mw = 0.0;
  double energy_per_block_nj = 0.0;   ///< at 50 cycles per block
  double energy_per_bit_pj = 0.0;     ///< per plaintext bit
};

/// Convert measured activity to power at `clock_mhz`.
PowerReport estimate(const Activity& activity, const PowerParams& params, double clock_mhz,
                     std::size_t ff_count, int cycles_per_block = 50);

/// End-to-end convenience: run `blocks` random encryptions through the
/// gate-level netlist (must be an encrypt-capable IP) and report power at
/// `clock_mhz`.
PowerReport profile_ip(const netlist::Netlist& ip_netlist, const PowerParams& params,
                       double clock_mhz, int blocks = 8, std::uint32_t seed = 1);

}  // namespace aesip::power
