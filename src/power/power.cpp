#include "power/power.hpp"

#include <random>

#include "core/gate_driver.hpp"

namespace aesip::power {

using netlist::Cell;
using netlist::CellKind;
using netlist::kNoNet;
using netlist::Netlist;
using netlist::NetId;

const PowerParams& acex1k_power() {
  static const PowerParams p{
      /*vdd=*/2.5,
      /*c_gate_pf=*/0.045,
      /*c_route_pf=*/0.030,
      /*c_clock_pf=*/0.020,
      /*c_io_pf=*/8.0,
      /*e_rom_access_pj=*/14.0,
      /*static_mw=*/15.0};
  return p;
}

const PowerParams& cyclone_power() {
  static const PowerParams p{
      /*vdd=*/1.5,
      /*c_gate_pf=*/0.022,
      /*c_route_pf=*/0.016,
      /*c_clock_pf=*/0.010,
      /*c_io_pf=*/6.0,
      /*e_rom_access_pj=*/5.0,
      /*static_mw=*/35.0};  // finer process leaks more
  return p;
}

const PowerParams& params_for(const fpga::Device& device) {
  return device.family == fpga::Family::kAcex1k ? acex1k_power() : cyclone_power();
}

ActivityProbe::ActivityProbe(const Netlist& nl, const PowerParams& params)
    : nl_(nl), params_(params) {
  const std::size_t n = nl.net_count();
  previous_.assign(n, 0);
  net_cap_pf_.assign(n, 0.0f);
  is_ff_out_.assign(n, 0);
  is_io_.assign(n, 0);
  rom_of_net_.assign(n, -1);

  // Fanout-derived capacitance, matching the timing model's view of nets.
  std::vector<int> fanout(n, 0);
  for (const Cell& c : nl.cells())
    for (int k = 0; k < c.fanin_count(); ++k)
      if (c.in[static_cast<std::size_t>(k)] != kNoNet) ++fanout[c.in[static_cast<std::size_t>(k)]];
  for (const auto& rom : nl.roms())
    for (const NetId a : rom.addr) ++fanout[a];
  for (const auto& po : nl.outputs()) ++fanout[po.net];

  for (std::size_t i = 0; i < n; ++i)
    net_cap_pf_[i] = static_cast<float>(params.c_gate_pf + params.c_route_pf * fanout[i]);

  for (const Cell& c : nl.cells())
    if (c.kind == CellKind::kDff) {
      is_ff_out_[c.out] = 1;
      ++ff_count_;
    }
  for (const auto& pi : nl.inputs()) is_io_[pi.net] = 1;
  for (const auto& po : nl.outputs()) is_io_[po.net] = 1;
  for (std::size_t ri = 0; ri < nl.roms().size(); ++ri)
    for (const NetId a : nl.roms()[ri].addr)
      rom_of_net_[a] = static_cast<std::int32_t>(ri);
}

void ActivityProbe::sample(std::span<const std::uint8_t> net_values) {
  std::vector<std::uint8_t> rom_read(nl_.roms().size(), 0);
  for (std::size_t i = 0; i < net_values.size(); ++i) {
    if (net_values[i] == previous_[i]) continue;
    ++activity_.net_toggles;
    activity_.weighted_cap_pf += net_cap_pf_[i];
    if (is_ff_out_[i]) ++activity_.ff_toggles;
    if (is_io_[i]) ++activity_.io_toggles;
    if (rom_of_net_[i] >= 0) rom_read[static_cast<std::size_t>(rom_of_net_[i])] = 1;
    previous_[i] = net_values[i];
  }
  for (const std::uint8_t read : rom_read) activity_.rom_reads += read;
  ++activity_.cycles;
}

PowerReport estimate(const Activity& activity, const PowerParams& params, double clock_mhz,
                     std::size_t ff_count, int cycles_per_block) {
  PowerReport r;
  r.clock_mhz = clock_mhz;
  if (activity.cycles == 0) return r;
  const double cycles = static_cast<double>(activity.cycles);
  const double f_hz = clock_mhz * 1e6;
  const double v2 = params.vdd * params.vdd;

  // Dynamic switching: 0.5 * C * V^2 per transition, at the measured
  // transitions-per-cycle rate.
  const double cap_per_cycle_pf = activity.weighted_cap_pf / cycles;
  const double logic_w = 0.5 * cap_per_cycle_pf * 1e-12 * v2 * f_hz;
  // Split the breakdown in proportion to the gate/route capacitance shares.
  const double route_share =
      params.c_route_pf / (params.c_gate_pf + params.c_route_pf);
  r.routing_mw = logic_w * route_share * 1e3;
  r.logic_mw = logic_w * (1.0 - route_share) * 1e3;

  // Clock tree: every flip-flop's clock input swings twice per cycle.
  r.clock_mw = static_cast<double>(ff_count) * params.c_clock_pf * 1e-12 * v2 * f_hz * 1e3;

  // Embedded-memory accesses.
  const double reads_per_cycle = static_cast<double>(activity.rom_reads) / cycles;
  r.memory_mw = reads_per_cycle * params.e_rom_access_pj * 1e-12 * f_hz * 1e3;

  // Pads: heavy capacitance on the 261-pin parallel bus.
  const double io_toggles_per_cycle = static_cast<double>(activity.io_toggles) / cycles;
  r.io_mw = 0.5 * io_toggles_per_cycle * params.c_io_pf * 1e-12 * v2 * f_hz * 1e3;

  r.static_mw = params.static_mw;
  r.total_mw = r.logic_mw + r.routing_mw + r.clock_mw + r.memory_mw + r.io_mw + r.static_mw;

  const double block_s = cycles_per_block / f_hz;
  r.energy_per_block_nj = r.total_mw * 1e-3 * block_s * 1e9;
  r.energy_per_bit_pj = r.energy_per_block_nj * 1e3 / 128.0;
  return r;
}

PowerReport profile_ip(const Netlist& ip_netlist, const PowerParams& params, double clock_mhz,
                       int blocks, std::uint32_t seed) {
  core::GateIpDriver drv(ip_netlist);
  ActivityProbe probe(ip_netlist, params);
  std::mt19937 rng(seed);

  drv.reset();
  std::array<std::uint8_t, 16> key{};
  for (auto& b : key) b = static_cast<std::uint8_t>(rng());
  drv.load_key(key, /*needs_setup=*/false);

  std::size_t ff_count = 0;
  for (const Cell& c : ip_netlist.cells())
    if (c.kind == CellKind::kDff) ++ff_count;

  // Measure over the processing of `blocks` random blocks at full rate.
  for (int i = 0; i < blocks; ++i) {
    std::array<std::uint8_t, 16> block{};
    for (auto& b : block) b = static_cast<std::uint8_t>(rng());
    drv.set_din(block);
    drv.set("wr_data", true);
    drv.clock();
    probe.sample(drv.evaluator().net_values());
    drv.set("wr_data", false);
    for (int c = 0; c < 50; ++c) {
      drv.clock();
      probe.sample(drv.evaluator().net_values());
    }
  }
  return estimate(probe.activity(), params, clock_mhz, ff_count);
}

}  // namespace aesip::power
