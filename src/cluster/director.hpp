// cluster::Director — each node's view of cluster membership, synced by
// gossip and projected onto a consistent-hash Ring.
//
// Every node runs one Director. It tracks, per node: the advertised
// address, a monotonically increasing heartbeat counter, and a serving
// flag. Liveness is inferred, never declared: a node bumps its own
// heartbeat each gossip tick, and a peer counts as alive while its
// heartbeat keeps advancing — if no gossip path has advanced it within
// `suspect_after`, the peer is suspected dead and drops out of the ring.
// A node draining for shutdown sets serving=false, which gossip spreads,
// so it leaves the ring *gracefully* (peers redirect its sessions) before
// it ever goes silent.
//
// Views travel as an opaque binary blob (encode_view/merge_view) inside
// kGossip frames. Merging is a pointwise max over heartbeats: the entry
// with the higher counter wins, ties keep what we have. That makes merge
// commutative, associative, and idempotent — gossip order, duplication,
// and loss cannot corrupt the membership, only delay it.
//
// Seeds are bootstrap addresses, not members: a node gossips at a seed
// address until whoever answers introduces themselves (their view names
// their id), after which they are a normal tracked node.
//
// Pure state machine: no sockets, no threads, clock passed in explicitly.
// The Server owns the gossip loop that dials peers (src/net/server.cpp);
// tests drive the Director with fake clocks. All methods are internally
// locked — worker threads ask for owners while the gossip thread merges.
#pragma once

#include "cluster/ring.hpp"

#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace aesip::cluster {

struct DirectorConfig {
  std::string self_id;
  std::string self_address;           ///< what peers should dial
  std::vector<std::string> seeds;     ///< bootstrap addresses (may include self)
  std::chrono::milliseconds suspect_after{1500};
  std::size_t ring_vnodes = 64;
};

struct NodeView {
  std::string id;
  std::string address;
  std::uint64_t heartbeat = 0;
  bool serving = true;
  bool alive = false;  ///< derived: serving and heartbeat still advancing
};

class Director {
 public:
  using clock = std::chrono::steady_clock;

  Director(DirectorConfig cfg, clock::time_point now);

  /// One gossip tick: advance our own heartbeat.
  void tick(clock::time_point now);

  /// Serialize the full known view (for a kGossip payload).
  std::vector<std::uint8_t> encode_view() const;

  /// Merge a peer's view: per node, the higher heartbeat wins; an advance
  /// refreshes that node's liveness clock. Returns false on a malformed
  /// blob (nothing merged).
  bool merge_view(std::span<const std::uint8_t> blob, clock::time_point now);

  /// The node id owning this session on the ring of *alive* nodes.
  /// Empty when no node is alive (the caller serves locally rather than
  /// bouncing sessions into the void).
  std::string owner(std::uint64_t session_id, clock::time_point now) const;

  /// Advertised address of a node id; empty if unknown.
  std::string address_of(const std::string& node_id) const;

  /// Next address to gossip with: round-robins over alive peers and
  /// still-unresolved seed addresses. nullopt when there is nobody.
  std::optional<std::string> pick_peer(clock::time_point now);

  /// Drain/resume: a non-serving node stays in the view (so the flag
  /// spreads) but leaves the ring.
  void set_self_serving(bool serving);
  bool self_serving() const;

  std::vector<NodeView> view(clock::time_point now) const;
  std::size_t alive_count(clock::time_point now) const;
  const std::string& self_id() const noexcept { return cfg_.self_id; }
  const std::string& self_address() const noexcept { return cfg_.self_address; }

 private:
  struct Entry {
    std::string address;
    std::uint64_t heartbeat = 0;
    bool serving = true;
    clock::time_point last_advance{};
  };

  bool alive_locked(const std::string& id, const Entry& e, clock::time_point now) const;
  const Ring& ring_locked(clock::time_point now) const;

  DirectorConfig cfg_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> nodes_;       ///< by node id, self included
  std::size_t peer_rr_ = 0;                  ///< pick_peer round-robin cursor
  mutable Ring ring_;                        ///< cached over the alive set
  mutable std::vector<std::string> ring_members_;  ///< what ring_ was built from
};

}  // namespace aesip::cluster
