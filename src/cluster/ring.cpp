#include "cluster/ring.hpp"

namespace aesip::cluster {

std::uint64_t hash64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t hash64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return hash64(h);
}

Ring::Ring(std::size_t vnodes) : vnodes_(vnodes == 0 ? 1 : vnodes) {}

void Ring::add_node(const std::string& node_id) {
  if (nodes_.count(node_id)) return;
  std::size_t placed = 0;
  for (std::size_t i = 0; i < vnodes_; ++i) {
    // Point position depends only on (node_id, i): every node computes the
    // identical circle from the same membership. Collisions (astronomically
    // rare on 64 bits) just drop a point; ownership stays consistent
    // because whichever node won the slot keeps it deterministically.
    const auto pos = hash64(node_id + "#" + std::to_string(i));
    if (points_.emplace(pos, node_id).second) ++placed;
  }
  nodes_[node_id] = placed;
}

void Ring::remove_node(const std::string& node_id) {
  if (!nodes_.erase(node_id)) return;
  for (auto it = points_.begin(); it != points_.end();)
    it = (it->second == node_id) ? points_.erase(it) : ++it;
}

const std::string& Ring::owner(std::uint64_t session_id) const {
  static const std::string kEmpty;
  if (points_.empty()) return kEmpty;
  // First point clockwise from the key's position, wrapping to the lowest
  // point past the top of the circle.
  auto it = points_.lower_bound(hash64(session_id));
  if (it == points_.end()) it = points_.begin();
  return it->second;
}

bool Ring::contains(const std::string& node_id) const { return nodes_.count(node_id) != 0; }

std::vector<std::string> Ring::nodes() const {
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const auto& [id, n] : nodes_) {
    (void)n;
    out.push_back(id);
  }
  return out;
}

}  // namespace aesip::cluster
