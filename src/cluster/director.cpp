#include "cluster/director.hpp"

#include <algorithm>

namespace aesip::cluster {

namespace {

void put_u16(std::vector<std::uint8_t>& v, std::uint16_t x) {
  v.push_back(static_cast<std::uint8_t>(x));
  v.push_back(static_cast<std::uint8_t>(x >> 8));
}

void put_u32(std::vector<std::uint8_t>& v, std::uint32_t x) {
  for (int i = 0; i < 4; ++i) v.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& v, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) v.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
}

void put_str(std::vector<std::uint8_t>& v, const std::string& s) {
  put_u16(v, static_cast<std::uint16_t>(std::min<std::size_t>(s.size(), 0xffff)));
  v.insert(v.end(), s.begin(), s.begin() + static_cast<std::ptrdiff_t>(
                                   std::min<std::size_t>(s.size(), 0xffff)));
}

/// Bounds-checked cursor over a view blob; any overrun poisons the read
/// and merge_view rejects the whole blob.
struct Reader {
  std::span<const std::uint8_t> d;
  std::size_t off = 0;
  bool ok = true;

  std::uint16_t u16() {
    if (off + 2 > d.size()) { ok = false; return 0; }
    const std::uint16_t x = static_cast<std::uint16_t>(d[off] | (d[off + 1] << 8));
    off += 2;
    return x;
  }
  std::uint32_t u32() {
    if (off + 4 > d.size()) { ok = false; return 0; }
    std::uint32_t x = 0;
    for (int i = 0; i < 4; ++i) x |= static_cast<std::uint32_t>(d[off + static_cast<std::size_t>(i)]) << (8 * i);
    off += 4;
    return x;
  }
  std::uint64_t u64() {
    if (off + 8 > d.size()) { ok = false; return 0; }
    std::uint64_t x = 0;
    for (int i = 0; i < 8; ++i) x |= static_cast<std::uint64_t>(d[off + static_cast<std::size_t>(i)]) << (8 * i);
    off += 8;
    return x;
  }
  std::uint8_t u8() {
    if (off + 1 > d.size()) { ok = false; return 0; }
    return d[off++];
  }
  std::string str() {
    const std::size_t n = u16();
    if (!ok || off + n > d.size()) { ok = false; return {}; }
    std::string s(d.begin() + static_cast<std::ptrdiff_t>(off),
                  d.begin() + static_cast<std::ptrdiff_t>(off + n));
    off += n;
    return s;
  }
};

}  // namespace

Director::Director(DirectorConfig cfg, clock::time_point now)
    : cfg_(std::move(cfg)), ring_(cfg_.ring_vnodes) {
  Entry self;
  self.address = cfg_.self_address;
  self.heartbeat = 1;
  self.serving = true;
  self.last_advance = now;
  nodes_.emplace(cfg_.self_id, std::move(self));
}

void Director::tick(clock::time_point now) {
  std::lock_guard lk(mu_);
  Entry& self = nodes_[cfg_.self_id];
  ++self.heartbeat;
  self.last_advance = now;
}

std::vector<std::uint8_t> Director::encode_view() const {
  std::lock_guard lk(mu_);
  std::vector<std::uint8_t> out;
  put_u32(out, static_cast<std::uint32_t>(nodes_.size()));
  for (const auto& [id, e] : nodes_) {
    put_str(out, id);
    put_str(out, e.address);
    put_u64(out, e.heartbeat);
    out.push_back(e.serving ? 1 : 0);
  }
  return out;
}

bool Director::merge_view(std::span<const std::uint8_t> blob, clock::time_point now) {
  Reader r{blob};
  const std::uint32_t count = r.u32();
  if (!r.ok || count > 4096) return false;

  // Decode fully before touching state: a truncated blob merges nothing.
  struct Row {
    std::string id, address;
    std::uint64_t heartbeat;
    bool serving;
  };
  std::vector<Row> rows;
  rows.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Row row;
    row.id = r.str();
    row.address = r.str();
    row.heartbeat = r.u64();
    row.serving = r.u8() != 0;
    if (!r.ok || row.id.empty()) return false;
    rows.push_back(std::move(row));
  }

  std::lock_guard lk(mu_);
  for (auto& row : rows) {
    auto [it, inserted] = nodes_.try_emplace(row.id);
    Entry& e = it->second;
    // Higher heartbeat wins — including for ourselves, except that only WE
    // are authoritative for our own entry: a peer echoing a stale view of
    // us must not roll back our serving flag.
    if (row.id == cfg_.self_id) {
      if (inserted) nodes_.erase(it);  // defensive; self always pre-exists
      continue;
    }
    if (inserted || row.heartbeat > e.heartbeat) {
      e.address = std::move(row.address);
      e.heartbeat = row.heartbeat;
      e.serving = row.serving;
      e.last_advance = now;  // the counter advanced: someone heard from it
    }
  }
  return true;
}

bool Director::alive_locked(const std::string& id, const Entry& e,
                            clock::time_point now) const {
  if (!e.serving) return false;
  if (id == cfg_.self_id) return true;  // we vouch for ourselves
  return now - e.last_advance < cfg_.suspect_after;
}

const Ring& Director::ring_locked(clock::time_point now) const {
  std::vector<std::string> alive;
  for (const auto& [id, e] : nodes_)
    if (alive_locked(id, e, now)) alive.push_back(id);
  if (alive != ring_members_) {
    Ring fresh(cfg_.ring_vnodes);
    for (const auto& id : alive) fresh.add_node(id);
    ring_ = std::move(fresh);
    ring_members_ = std::move(alive);
  }
  return ring_;
}

std::string Director::owner(std::uint64_t session_id, clock::time_point now) const {
  std::lock_guard lk(mu_);
  return ring_locked(now).owner(session_id);
}

std::string Director::address_of(const std::string& node_id) const {
  std::lock_guard lk(mu_);
  const auto it = nodes_.find(node_id);
  return it == nodes_.end() ? std::string{} : it->second.address;
}

std::optional<std::string> Director::pick_peer(clock::time_point now) {
  std::lock_guard lk(mu_);
  std::vector<std::string> candidates;
  for (const auto& [id, e] : nodes_) {
    if (id == cfg_.self_id || e.address.empty()) continue;
    if (alive_locked(id, e, now)) candidates.push_back(e.address);
  }
  // Seeds we have not resolved to a member yet: keep knocking so a
  // late-started or recovered node is rediscovered.
  for (const auto& seed : cfg_.seeds) {
    if (seed == cfg_.self_address) continue;
    const bool known = std::any_of(nodes_.begin(), nodes_.end(), [&](const auto& kv) {
      return kv.second.address == seed && alive_locked(kv.first, kv.second, now);
    });
    if (!known && std::find(candidates.begin(), candidates.end(), seed) == candidates.end())
      candidates.push_back(seed);
  }
  if (candidates.empty()) return std::nullopt;
  return candidates[peer_rr_++ % candidates.size()];
}

void Director::set_self_serving(bool serving) {
  std::lock_guard lk(mu_);
  Entry& self = nodes_[cfg_.self_id];
  if (self.serving != serving) {
    self.serving = serving;
    ++self.heartbeat;  // make the change outrank every stale echo of us
  }
}

bool Director::self_serving() const {
  std::lock_guard lk(mu_);
  const auto it = nodes_.find(cfg_.self_id);
  return it != nodes_.end() && it->second.serving;
}

std::vector<NodeView> Director::view(clock::time_point now) const {
  std::lock_guard lk(mu_);
  std::vector<NodeView> out;
  out.reserve(nodes_.size());
  for (const auto& [id, e] : nodes_) {
    NodeView v;
    v.id = id;
    v.address = e.address;
    v.heartbeat = e.heartbeat;
    v.serving = e.serving;
    v.alive = alive_locked(id, e, now);
    out.push_back(std::move(v));
  }
  return out;
}

std::size_t Director::alive_count(clock::time_point now) const {
  std::lock_guard lk(mu_);
  std::size_t n = 0;
  for (const auto& [id, e] : nodes_)
    if (alive_locked(id, e, now)) ++n;
  return n;
}

}  // namespace aesip::cluster
