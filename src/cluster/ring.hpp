// cluster::Ring — consistent-hash sharding of session ids across nodes.
//
// Each node is hashed onto a 64-bit circle at `vnodes` points (virtual
// nodes smooth the load: with one point per node, removing a node dumps
// its whole arc on a single successor; with 64, the arc shatters into 64
// slivers spread over everyone). A session id hashes to one point on the
// same circle and is owned by the first node point at or clockwise after
// it, wrapping at the top.
//
// The property the cluster leans on: adding or removing one node moves
// only the keys on the arcs that node's points covered — every other
// session keeps its owner, so a membership change re-homes ~1/N of the
// sessions instead of reshuffling all of them (test_cluster.cpp pins
// this). Ownership is a pure function of (membership, session_id): every
// node that agrees on the member list agrees on every owner, with no
// coordination beyond the gossip that syncs the list.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace aesip::cluster {

/// splitmix64 finalizer: cheap, well-mixed, stable across platforms.
std::uint64_t hash64(std::uint64_t x) noexcept;

/// FNV-1a over a string, then finalized — used for node-point placement.
std::uint64_t hash64(std::string_view s) noexcept;

class Ring {
 public:
  explicit Ring(std::size_t vnodes = 64);

  void add_node(const std::string& node_id);
  void remove_node(const std::string& node_id);

  /// The node owning this session, or "" when the ring is empty.
  const std::string& owner(std::uint64_t session_id) const;

  bool contains(const std::string& node_id) const;
  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t vnodes() const noexcept { return vnodes_; }
  std::vector<std::string> nodes() const;

 private:
  std::size_t vnodes_;
  std::map<std::uint64_t, std::string> points_;  ///< circle position -> node
  std::map<std::string, std::size_t> nodes_;     ///< node -> points placed
};

}  // namespace aesip::cluster
