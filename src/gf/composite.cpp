#include "gf/composite.hpp"

#include <stdexcept>

#include "gf/gf256.hpp"

namespace aesip::gf {

namespace gf16 {

std::uint8_t mul(std::uint8_t a, std::uint8_t b) noexcept {
  std::uint8_t p = 0;
  for (int i = 0; i < 4; ++i) {
    if (b & 1U) p = static_cast<std::uint8_t>(p ^ a);
    b = static_cast<std::uint8_t>(b >> 1);
    const bool carry = (a & 0x8) != 0;
    a = static_cast<std::uint8_t>((a << 1) & 0xf);
    if (carry) a = static_cast<std::uint8_t>(a ^ 0x3);  // y^4 = y + 1
  }
  return p;
}

std::uint8_t inverse(std::uint8_t a) noexcept {
  if (a == 0) return 0;
  // a^14 = a^-1 in GF(16) (group order 15).
  std::uint8_t r = 1;
  for (int i = 0; i < 14; ++i) r = mul(r, a);
  return r;
}

std::uint8_t square(std::uint8_t a) noexcept { return mul(a, a); }

BitMatrix8 square_matrix() noexcept {
  BitMatrix8 m;
  for (int j = 0; j < 4; ++j) {
    const std::uint8_t col = square(static_cast<std::uint8_t>(1U << j));
    for (int i = 0; i < 4; ++i)
      if ((col >> i) & 1U) m.set(i, j, true);
  }
  return m;
}

BitMatrix8 mul_matrix(std::uint8_t constant) noexcept {
  BitMatrix8 m;
  for (int j = 0; j < 4; ++j) {
    const std::uint8_t col = mul(constant, static_cast<std::uint8_t>(1U << j));
    for (int i = 0; i < 4; ++i)
      if ((col >> i) & 1U) m.set(i, j, true);
  }
  return m;
}

}  // namespace gf16

std::uint8_t CompositeField::mul(std::uint8_t a, std::uint8_t b) const noexcept {
  const std::uint8_t ah = a >> 4, al = a & 0xf;
  const std::uint8_t bh = b >> 4, bl = b & 0xf;
  // (ah x + al)(bh x + bl) with x^2 = x + lambda.
  const std::uint8_t hh = gf16::mul(ah, bh);
  const std::uint8_t ch = static_cast<std::uint8_t>(hh ^ gf16::mul(ah, bl) ^ gf16::mul(al, bh));
  const std::uint8_t cl = static_cast<std::uint8_t>(gf16::mul(hh, lambda_) ^ gf16::mul(al, bl));
  return static_cast<std::uint8_t>((ch << 4) | cl);
}

std::uint8_t CompositeField::inverse(std::uint8_t a) const noexcept {
  const std::uint8_t ah = a >> 4, al = a & 0xf;
  const std::uint8_t d = static_cast<std::uint8_t>(gf16::mul(gf16::square(ah), lambda_) ^
                                                   gf16::mul(ah, al) ^ gf16::square(al));
  const std::uint8_t dinv = gf16::inverse(d);
  const std::uint8_t rh = gf16::mul(ah, dinv);
  const std::uint8_t rl = gf16::mul(static_cast<std::uint8_t>(ah ^ al), dinv);
  return static_cast<std::uint8_t>((rh << 4) | rl);
}

CompositeField::CompositeField() : lambda_(0) {
  // lambda making x^2 + x + lambda irreducible: lambda outside {t^2 + t}.
  bool reducible[16] = {};
  for (std::uint8_t t = 0; t < 16; ++t)
    reducible[gf16::square(t) ^ t] = true;
  for (std::uint8_t l = 1; l < 16 && lambda_ == 0; ++l)
    if (!reducible[l]) lambda_ = l;
  if (lambda_ == 0) throw std::logic_error("composite: no irreducible extension found");

  // Find a root beta of the Rijndael polynomial z^8+z^4+z^3+z+1 in the
  // tower; the algebra map X -> beta is then a field isomorphism.
  std::uint8_t beta = 0;
  for (int cand = 2; cand < 256; ++cand) {
    const auto b = static_cast<std::uint8_t>(cand);
    auto pw = [&](int e) {
      std::uint8_t r = 1;
      for (int i = 0; i < e; ++i) r = mul(r, b);
      return r;
    };
    const std::uint8_t value = static_cast<std::uint8_t>(pw(8) ^ pw(4) ^ pw(3) ^ b ^ 1);
    if (value == 0) {
      beta = b;
      break;
    }
  }
  if (beta == 0) throw std::logic_error("composite: no root of the Rijndael polynomial");

  // to_: column j = beta^j (the image of X^j).
  std::uint8_t power = 1;
  for (int j = 0; j < 8; ++j) {
    for (int i = 0; i < 8; ++i)
      if ((power >> i) & 1U) to_.set(i, j, true);
    power = mul(power, beta);
  }
  from_ = to_.inverse();
  if (!to_.invertible()) throw std::logic_error("composite: isomorphism not invertible");
}

const CompositeField& composite_field() {
  static const CompositeField f;
  return f;
}

}  // namespace aesip::gf
