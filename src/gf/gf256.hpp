// Galois-field GF(2^8) arithmetic for Rijndael.
//
// Rijndael interprets every byte as an element of GF(2^8) represented as a
// polynomial over GF(2) reduced modulo the irreducible polynomial
//
//     m(x) = x^8 + x^4 + x^3 + x + 1   (0x11b)
//
// This module provides the field operations from first principles plus
// constexpr-generated log/antilog tables for the fast paths used by the
// reference cipher and by the gate-level synthesis generators.
#pragma once

#include <array>
#include <cstdint>

namespace aesip::gf {

/// The Rijndael reduction polynomial without the x^8 term (0x1b), i.e. the
/// value XORed into the byte when the multiplication-by-x overflows.
inline constexpr std::uint8_t kReductionLow = 0x1b;

/// Multiply a field element by x ("xtime" in FIPS-197 terminology).
/// A left shift followed by conditional reduction with m(x).
constexpr std::uint8_t xtime(std::uint8_t a) noexcept {
  return static_cast<std::uint8_t>((a << 1) ^ ((a >> 7) ? kReductionLow : 0));
}

/// Carry-less ("Russian peasant") multiplication in GF(2^8).
/// Used as the reference implementation; O(8) per product and fully
/// constexpr so all derived tables are computed at compile time.
constexpr std::uint8_t mul_slow(std::uint8_t a, std::uint8_t b) noexcept {
  std::uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1U) p = static_cast<std::uint8_t>(p ^ a);
    b = static_cast<std::uint8_t>(b >> 1);
    a = xtime(a);
  }
  return p;
}

namespace detail {

/// 0x03 generates the multiplicative group of GF(2^8); exp/log tables are
/// built by walking its powers once at compile time.
struct ExpLogTables {
  std::array<std::uint8_t, 512> exp{};  // doubled to avoid a mod-255
  std::array<std::uint8_t, 256> log{};
};

constexpr ExpLogTables make_exp_log() noexcept {
  ExpLogTables t{};
  std::uint8_t x = 1;
  for (int i = 0; i < 255; ++i) {
    t.exp[static_cast<std::size_t>(i)] = x;
    t.exp[static_cast<std::size_t>(i) + 255] = x;
    t.log[x] = static_cast<std::uint8_t>(i);
    x = static_cast<std::uint8_t>(mul_slow(x, 0x03));
  }
  t.exp[510] = t.exp[0];
  t.exp[511] = t.exp[1];
  return t;
}

inline constexpr ExpLogTables kTables = make_exp_log();

}  // namespace detail

/// Addition in GF(2^8) is XOR (characteristic 2).
constexpr std::uint8_t add(std::uint8_t a, std::uint8_t b) noexcept {
  return static_cast<std::uint8_t>(a ^ b);
}

/// Table-driven multiplication: a*b = g^(log a + log b).
constexpr std::uint8_t mul(std::uint8_t a, std::uint8_t b) noexcept {
  if (a == 0 || b == 0) return 0;
  return detail::kTables
      .exp[static_cast<std::size_t>(detail::kTables.log[a]) + detail::kTables.log[b]];
}

/// Multiplicative inverse; inverse(0) is defined as 0 (the Rijndael S-box
/// convention, FIPS-197 §5.1.1).
constexpr std::uint8_t inverse(std::uint8_t a) noexcept {
  if (a == 0) return 0;
  return detail::kTables.exp[255 - detail::kTables.log[a]];
}

/// a / b with b != 0. Division by zero returns 0 (never used by the cipher;
/// kept total to stay constexpr-friendly).
constexpr std::uint8_t div(std::uint8_t a, std::uint8_t b) noexcept {
  if (a == 0 || b == 0) return 0;
  return detail::kTables
      .exp[static_cast<std::size_t>(detail::kTables.log[a]) + 255 - detail::kTables.log[b]];
}

/// a^n by square-and-multiply.
constexpr std::uint8_t pow(std::uint8_t a, unsigned n) noexcept {
  std::uint8_t r = 1;
  std::uint8_t base = a;
  while (n != 0) {
    if (n & 1U) r = mul(r, base);
    base = mul(base, base);
    n >>= 1U;
  }
  return r;
}

/// Round-constant generator: rcon(i) = x^(i-1) in GF(2^8), i >= 1.
/// rcon(1)=0x01 ... rcon(10)=0x36 are the ten constants AES-128 consumes.
constexpr std::uint8_t rcon(unsigned i) noexcept {
  std::uint8_t r = 1;
  for (unsigned k = 1; k < i; ++k) r = xtime(r);
  return r;
}

/// Degree of the GF(2) polynomial representing `a` (-1 for a == 0).
constexpr int degree(std::uint8_t a) noexcept {
  for (int d = 7; d >= 0; --d)
    if (a & (1U << d)) return d;
  return -1;
}

}  // namespace aesip::gf
