// 8x8 matrices over GF(2) and affine maps on bytes.
//
// The Rijndael S-box is  s = A * inverse(x) + c  where A is a fixed
// circulant GF(2) matrix and c = 0x63.  Building the S-box from this
// algebraic definition (rather than pasting the table) lets the tests pin
// the published table against first principles, and lets the netlist
// generators reason about the affine layer as XOR gates.
#pragma once

#include <array>
#include <cstdint>

namespace aesip::gf {

/// An 8x8 matrix over GF(2); row i is a bitmask whose bit j is M[i][j].
/// Vectors are bytes with bit k = coefficient of x^k (LSB-first, matching
/// FIPS-197's bit numbering).
class BitMatrix8 {
 public:
  constexpr BitMatrix8() noexcept : rows_{} {}
  explicit constexpr BitMatrix8(const std::array<std::uint8_t, 8>& rows) noexcept
      : rows_(rows) {}

  /// Identity matrix.
  static constexpr BitMatrix8 identity() noexcept {
    BitMatrix8 m;
    for (int i = 0; i < 8; ++i) m.rows_[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(1U << i);
    return m;
  }

  /// Circulant matrix whose row i is `first_row` rotated left by i.
  /// The Rijndael affine matrix is circulant with first row 0xF1 bits
  /// {0,4,5,6,7}.
  static constexpr BitMatrix8 circulant(std::uint8_t first_row) noexcept {
    BitMatrix8 m;
    std::uint8_t r = first_row;
    for (int i = 0; i < 8; ++i) {
      m.rows_[static_cast<std::size_t>(i)] = r;
      r = static_cast<std::uint8_t>(((r << 1) | (r >> 7)) & 0xff);
    }
    return m;
  }

  constexpr std::uint8_t row(int i) const noexcept {
    return rows_[static_cast<std::size_t>(i)];
  }
  constexpr bool at(int i, int j) const noexcept {
    return (rows_[static_cast<std::size_t>(i)] >> j) & 1U;
  }
  constexpr void set(int i, int j, bool v) noexcept {
    const std::uint8_t bit = static_cast<std::uint8_t>(1U << j);
    auto& r = rows_[static_cast<std::size_t>(i)];
    r = static_cast<std::uint8_t>(v ? (r | bit) : (r & ~bit));
  }

  /// Matrix-vector product over GF(2): result bit i = parity(row_i & v).
  constexpr std::uint8_t apply(std::uint8_t v) const noexcept {
    std::uint8_t out = 0;
    for (int i = 0; i < 8; ++i) {
      std::uint8_t masked = static_cast<std::uint8_t>(rows_[static_cast<std::size_t>(i)] & v);
      // parity of masked
      masked ^= static_cast<std::uint8_t>(masked >> 4);
      masked ^= static_cast<std::uint8_t>(masked >> 2);
      masked ^= static_cast<std::uint8_t>(masked >> 1);
      if (masked & 1U) out = static_cast<std::uint8_t>(out | (1U << i));
    }
    return out;
  }

  constexpr BitMatrix8 operator*(const BitMatrix8& rhs) const noexcept {
    BitMatrix8 out;
    for (int i = 0; i < 8; ++i)
      for (int j = 0; j < 8; ++j)
        if (at(i, j))
          out.rows_[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(
              out.rows_[static_cast<std::size_t>(i)] ^ rhs.rows_[static_cast<std::size_t>(j)]);
    return out;
  }

  constexpr bool operator==(const BitMatrix8& rhs) const noexcept { return rows_ == rhs.rows_; }

  /// Gauss-Jordan inverse; returns identity() for singular input (callers
  /// check invertibility via `invertible()` first when it matters).
  constexpr BitMatrix8 inverse() const noexcept {
    std::array<std::uint16_t, 8> aug{};  // low 8 bits: M, high 8 bits: I
    for (int i = 0; i < 8; ++i)
      aug[static_cast<std::size_t>(i)] = static_cast<std::uint16_t>(
          rows_[static_cast<std::size_t>(i)] | (1U << (8 + i)));
    for (int col = 0; col < 8; ++col) {
      int pivot = -1;
      for (int r = col; r < 8; ++r)
        if ((aug[static_cast<std::size_t>(r)] >> col) & 1U) { pivot = r; break; }
      if (pivot < 0) return identity();
      if (pivot != col) {
        auto t = aug[static_cast<std::size_t>(col)];
        aug[static_cast<std::size_t>(col)] = aug[static_cast<std::size_t>(pivot)];
        aug[static_cast<std::size_t>(pivot)] = t;
      }
      for (int r = 0; r < 8; ++r)
        if (r != col && ((aug[static_cast<std::size_t>(r)] >> col) & 1U))
          aug[static_cast<std::size_t>(r)] = static_cast<std::uint16_t>(
              aug[static_cast<std::size_t>(r)] ^ aug[static_cast<std::size_t>(col)]);
    }
    BitMatrix8 out;
    for (int i = 0; i < 8; ++i)
      out.rows_[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(aug[static_cast<std::size_t>(i)] >> 8);
    return out;
  }

  /// True iff the matrix has an inverse. (inverse() returns identity() for
  /// singular input, and M * I == I only if M == I, which is invertible.)
  constexpr bool invertible() const noexcept {
    return (*this * this->inverse()) == identity();
  }

 private:
  std::array<std::uint8_t, 8> rows_;
};

/// Affine map y = M*x + c over GF(2)^8.
struct Affine8 {
  BitMatrix8 matrix;
  std::uint8_t constant = 0;

  constexpr std::uint8_t apply(std::uint8_t v) const noexcept {
    return static_cast<std::uint8_t>(matrix.apply(v) ^ constant);
  }

  /// Inverse affine map: x = M^-1 * (y + c).
  constexpr Affine8 inverted() const noexcept {
    const BitMatrix8 minv = matrix.inverse();
    return Affine8{minv, minv.apply(constant)};
  }
};

/// The Rijndael S-box affine layer (FIPS-197 §5.1.1): circulant matrix with
/// first row bits {0,4,5,6,7} = 0xF1 and constant 0x63.
inline constexpr Affine8 kSBoxAffine{BitMatrix8::circulant(0xF1), 0x63};

}  // namespace aesip::gf
