// Polynomials of degree < 4 over GF(2^8), modulo x^4 + 1.
//
// Rijndael's MixColumn treats each state column as the polynomial
// a(x) = a3 x^3 + a2 x^2 + a1 x + a0 and multiplies it by the fixed
// polynomial c(x) = 03 x^3 + 01 x^2 + 01 x + 02 modulo x^4 + 1
// (FIPS-197 §5.1.3).  x^4 + 1 is not irreducible, but c(x) is chosen
// coprime to it, so the map is invertible with inverse
// d(x) = 0b x^3 + 0d x^2 + 09 x + 0e.
//
// This module implements the ring so MixColumn/InvMixColumn in the
// reference cipher, the RTL model and the gate-level generators all derive
// from one algebraic definition.
#pragma once

#include <array>
#include <cstdint>

#include "gf/gf256.hpp"

namespace aesip::gf {

/// Element of GF(2^8)[x] / (x^4 + 1); coef[i] multiplies x^i.
class ColumnPoly {
 public:
  constexpr ColumnPoly() noexcept : coef_{} {}
  explicit constexpr ColumnPoly(const std::array<std::uint8_t, 4>& c) noexcept : coef_(c) {}
  constexpr ColumnPoly(std::uint8_t c0, std::uint8_t c1, std::uint8_t c2,
                       std::uint8_t c3) noexcept
      : coef_{c0, c1, c2, c3} {}

  constexpr std::uint8_t operator[](int i) const noexcept {
    return coef_[static_cast<std::size_t>(i)];
  }
  constexpr std::uint8_t& operator[](int i) noexcept {
    return coef_[static_cast<std::size_t>(i)];
  }

  constexpr ColumnPoly operator+(const ColumnPoly& rhs) const noexcept {
    ColumnPoly out;
    for (int i = 0; i < 4; ++i) out[i] = add((*this)[i], rhs[i]);
    return out;
  }

  /// Product modulo x^4 + 1: result_i = sum over j of a_j * b_{(i-j) mod 4}.
  constexpr ColumnPoly operator*(const ColumnPoly& rhs) const noexcept {
    ColumnPoly out;
    for (int i = 0; i < 4; ++i) {
      std::uint8_t acc = 0;
      for (int j = 0; j < 4; ++j)
        acc = add(acc, mul((*this)[j], rhs[(i - j) & 3]));
      out[i] = acc;
    }
    return out;
  }

  constexpr bool operator==(const ColumnPoly& rhs) const noexcept { return coef_ == rhs.coef_; }

  /// Multiplicative identity of the ring.
  static constexpr ColumnPoly one() noexcept { return ColumnPoly{1, 0, 0, 0}; }

 private:
  std::array<std::uint8_t, 4> coef_;
};

/// MixColumn multiplier c(x) = {02, 01, 01, 03}.
inline constexpr ColumnPoly kMixColumnPoly{0x02, 0x01, 0x01, 0x03};

/// InvMixColumn multiplier d(x) = {0e, 09, 0d, 0b}, with c(x)*d(x) = 1.
inline constexpr ColumnPoly kInvMixColumnPoly{0x0e, 0x09, 0x0d, 0x0b};

static_assert(kMixColumnPoly * kInvMixColumnPoly == ColumnPoly::one(),
              "MixColumn polynomial must invert to the FIPS-197 d(x)");

}  // namespace aesip::gf
