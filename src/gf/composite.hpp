// Composite-field decomposition GF(2^8) ~ GF((2^4)^2).
//
// The Rijndael inversion — the expensive part of the S-box — can be
// computed in the isomorphic tower field GF((2^4)^2), where it reduces to
// a handful of 4-bit operations:
//
//   (ah x + al)^-1 = ah d^-1 x + (ah + al) d^-1,
//   d = lambda ah^2 + ah al + al^2,
//
// with GF(16) squaring and the lambda scaling *linear* over GF(2), and the
// 16-entry GF(16) inverse small enough for a single 4-LUT per bit.  This
// is the standard low-area S-box construction (Rijmen's note; Satoh et
// al., ASIACRYPT 2001) — exactly the kind of optimization that would
// shrink the paper's Cyclone logic S-boxes, and the gate generator in
// netlist/synth uses this module's matrices and formulas.
//
// Everything is derived, not transcribed: the isomorphism is found by
// locating a root of the Rijndael polynomial inside the tower field, and
// the test suite pins the construction against the table S-box for all
// 256 inputs.
#pragma once

#include <array>
#include <cstdint>

#include "gf/bitmatrix.hpp"

namespace aesip::gf {

/// GF(16) with polynomial y^4 + y + 1.
namespace gf16 {

std::uint8_t mul(std::uint8_t a, std::uint8_t b) noexcept;
std::uint8_t inverse(std::uint8_t a) noexcept;  // inverse(0) == 0
std::uint8_t square(std::uint8_t a) noexcept;

/// 4x4 GF(2) matrix of the (linear) squaring map.
BitMatrix8 square_matrix() noexcept;
/// 4x4 GF(2) matrix of multiplication by a constant.
BitMatrix8 mul_matrix(std::uint8_t constant) noexcept;

}  // namespace gf16

/// The tower field and its isomorphism with the Rijndael field.
class CompositeField {
 public:
  /// Builds the tower: picks the first lambda making x^2 + x + lambda
  /// irreducible over GF(16), then finds a root of the Rijndael polynomial
  /// to construct the isomorphism matrices.
  CompositeField();

  std::uint8_t lambda() const noexcept { return lambda_; }

  /// Map a Rijndael-field byte into the tower representation
  /// (high nibble = ah, low nibble = al) and back.
  std::uint8_t to_composite(std::uint8_t a) const noexcept { return to_.apply(a); }
  std::uint8_t from_composite(std::uint8_t a) const noexcept { return from_.apply(a); }

  const BitMatrix8& to_matrix() const noexcept { return to_; }
  const BitMatrix8& from_matrix() const noexcept { return from_; }

  /// Field operations computed in the tower representation.
  std::uint8_t mul(std::uint8_t a, std::uint8_t b) const noexcept;
  std::uint8_t inverse(std::uint8_t a) const noexcept;

 private:
  std::uint8_t lambda_;
  BitMatrix8 to_;    // Rijndael -> tower
  BitMatrix8 from_;  // tower -> Rijndael
};

/// Shared instance (construction is a one-time search).
const CompositeField& composite_field();

}  // namespace aesip::gf
