#include "fpga/fitter.hpp"
#include <algorithm>

namespace aesip::fpga {

FitReport fit(const techmap::MapResult& design, const Device& device) {
  const techmap::MapStats& st = design.stats;
  if (st.roms > 0 && !device.supports_async_rom)
    throw FitError("fit: design uses asynchronous ROM but " + device.name +
                   " memory blocks are synchronous-only; re-synthesize the "
                   "S-boxes as logic");

  FitReport r;
  r.device = &device;
  r.logic_elements = st.logic_elements;
  r.le_pct = 100.0 * static_cast<double>(st.logic_elements) /
             static_cast<double>(device.logic_elements);
  r.memory_bits = st.rom_bits;
  r.memory_pct =
      100.0 * static_cast<double>(st.rom_bits) / static_cast<double>(device.memory_bits);
  // S-box ROMs are 2048 bits; EABs/M4Ks pack as many as fit per block.
  const int sboxes_per_block = device.memory_block_bits / 2048;
  r.memory_blocks = sboxes_per_block > 0
                        ? static_cast<int>((st.roms + static_cast<std::size_t>(sboxes_per_block) -
                                            1) /
                                           static_cast<std::size_t>(sboxes_per_block))
                        : 0;
  r.pins = st.pins;
  r.pin_pct = 100.0 * static_cast<double>(st.pins) / static_cast<double>(device.user_io);

  r.fits = st.logic_elements <= static_cast<std::size_t>(device.logic_elements) &&
           st.rom_bits <= static_cast<std::size_t>(device.memory_bits) &&
           r.memory_blocks <= device.memory_blocks && st.pins <= device.user_io;

  // Congestion derate: routing stretches as the device fills (the place &
  // route tool has fewer fast alternatives).  Linear above a 25 %-full
  // knee, calibrated against the paper's encrypt-vs-both clock spread
  // (42 % vs 64 % utilization on the Acex part).
  sta::DelayModel timing = device.timing;
  const double util = r.le_pct / 100.0;
  const double derate = 1.0 + 0.5 * std::max(0.0, util - 0.25);
  timing.t_route_base *= derate;
  timing.t_route_fanout *= derate;
  timing.t_route_fanout_cap *= derate;

  r.timing = sta::analyze(design.mapped, timing);
  return r;
}

}  // namespace aesip::fpga
