// Altera device models: the silicon targets of the paper.
//
// Capacities come from the public Acex 1K and Cyclone datasheets; the
// paper's occupation percentages (42 % of LCs, 33 % of memory, 78 % of pins
// on the EP1K100, etc.) are *computed* against these numbers, not copied.
//
// The architectural rule the paper hinges on is captured by
// `supports_async_rom`: Acex 1K EABs can implement asynchronous 256x8 ROMs
// (an S-box read is a combinational memory access), while Cyclone M4K
// blocks are synchronous-only — so on Cyclone the S-boxes must be built
// from logic cells, which is exactly why the paper reports Memory = 0 and
// roughly +240 LCs per S-box on that family.
#pragma once

#include <string>
#include <vector>

#include "sta/sta.hpp"

namespace aesip::fpga {

enum class Family { kAcex1k, kCyclone };

struct Device {
  std::string name;
  Family family;
  int logic_elements;      ///< LEs (the paper's "LCs")
  int memory_bits;         ///< total embedded memory bits
  int memory_block_bits;   ///< bits per EAB (4096) / M4K (4608)
  int memory_blocks;
  bool supports_async_rom; ///< EAB yes, M4K no
  int user_io;             ///< maximum user I/O pins for the package
  sta::DelayModel timing;  ///< family + speed-grade delay parameters
};

/// EP1K100FC484-1 — the paper's Acex 1K part (speed grade -1).
const Device& ep1k100fc484_1();
/// EP1C20F400C6 — the paper's Cyclone part (speed grade C6, preliminary).
const Device& ep1c20f400c6();

/// Smaller family members for the design-space exploration example.
const Device& ep1k50tc144_1();
const Device& ep1c12f324c6();
const Device& ep1c6t144c6();
const Device& ep1c3t100c6();

/// All devices known to the database.
const std::vector<const Device*>& all_devices();

/// Lookup by exact name; returns nullptr when unknown.
const Device* find_device(const std::string& name);

}  // namespace aesip::fpga
