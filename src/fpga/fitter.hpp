// Device fitting: resource accounting + timing closure on a device model.
//
// Mirrors the Quartus fitter step of the paper's flow: take a mapped
// design, check it against a device's LE / embedded-memory / pin budget,
// compute the occupation percentages of the paper's Table 2, and run
// static timing with the device's delay model.
#pragma once

#include <stdexcept>

#include "fpga/device.hpp"
#include "sta/sta.hpp"
#include "techmap/techmap.hpp"

namespace aesip::fpga {

struct FitReport {
  const Device* device = nullptr;

  std::size_t logic_elements = 0;
  double le_pct = 0.0;
  std::size_t memory_bits = 0;
  double memory_pct = 0.0;
  int memory_blocks = 0;  ///< EAB/M4K blocks consumed (2 S-boxes pack per EAB)
  int pins = 0;
  double pin_pct = 0.0;
  bool fits = false;

  sta::TimingReport timing;

  /// Latency of a design that takes `cycles` clocks per block.
  double latency_ns(int cycles) const { return timing.clock_period_ns * cycles; }
  /// Full-rate throughput in Mbit/s for `block_bits` every `cycles` clocks.
  double throughput_mbps(int block_bits, int cycles) const {
    return latency_ns(cycles) > 0.0 ? static_cast<double>(block_bits) / latency_ns(cycles) * 1000.0
                                    : 0.0;
  }
};

/// Raised when the design cannot be placed on the device at all (e.g.
/// asynchronous ROMs on a family without async-capable memory).
class FitError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Fit a mapped design onto `device`.  Throws FitError if the design uses
/// asynchronous ROM macros on a device that cannot implement them (the
/// caller must re-synthesize with logic S-boxes, as the paper did for
/// Cyclone).  Over-capacity results are returned with fits == false.
FitReport fit(const techmap::MapResult& design, const Device& device);

}  // namespace aesip::fpga
