#include "fpga/device.hpp"

namespace aesip::fpga {

namespace {

// Delay parameters (ns). t_lut/t_route_base are the two calibrated knobs
// per family (fitted so the encrypt-only IP lands on the paper's reported
// clock period); the rest are datasheet-order-of-magnitude constants.
// See EXPERIMENTS.md "Timing calibration".
constexpr sta::DelayModel kAcex1kSpeed1{
    /*t_lut=*/0.60, /*t_rom=*/3.60, /*t_co=*/0.75, /*t_su=*/0.55,
    /*t_route_base=*/0.70, /*t_route_fanout=*/0.035, /*t_io=*/2.00,
    /*t_route_fanout_cap=*/0.62};

constexpr sta::DelayModel kCycloneC6{
    /*t_lut=*/0.42, /*t_rom=*/2.40, /*t_co=*/0.40, /*t_su=*/0.28,
    /*t_route_base=*/0.48, /*t_route_fanout=*/0.025, /*t_io=*/1.80,
    /*t_route_fanout_cap=*/0.42};

}  // namespace

const Device& ep1k100fc484_1() {
  static const Device d{
      "EP1K100FC484-1", Family::kAcex1k,
      /*logic_elements=*/4992,
      /*memory_bits=*/49152,  // 12 EABs x 4096 bits
      /*memory_block_bits=*/4096,
      /*memory_blocks=*/12,
      /*supports_async_rom=*/true,
      /*user_io=*/333,
      kAcex1kSpeed1};
  return d;
}

const Device& ep1c20f400c6() {
  static const Device d{
      "EP1C20F400C6", Family::kCyclone,
      /*logic_elements=*/20060,
      /*memory_bits=*/294912,  // 64 M4K x 4608 bits
      /*memory_block_bits=*/4608,
      /*memory_blocks=*/64,
      /*supports_async_rom=*/false,
      /*user_io=*/301,
      kCycloneC6};
  return d;
}

const Device& ep1k50tc144_1() {
  static const Device d{
      "EP1K50TC144-1", Family::kAcex1k,
      /*logic_elements=*/2880,
      /*memory_bits=*/40960,  // 10 EABs x 4096 bits
      /*memory_block_bits=*/4096,
      /*memory_blocks=*/10,
      /*supports_async_rom=*/true,
      /*user_io=*/102,
      kAcex1kSpeed1};
  return d;
}

const Device& ep1c12f324c6() {
  static const Device d{
      "EP1C12F324C6", Family::kCyclone,
      /*logic_elements=*/12060,
      /*memory_bits=*/239616,  // 52 M4K
      /*memory_block_bits=*/4608,
      /*memory_blocks=*/52,
      /*supports_async_rom=*/false,
      /*user_io=*/249,
      kCycloneC6};
  return d;
}

const Device& ep1c6t144c6() {
  static const Device d{
      "EP1C6T144C6", Family::kCyclone,
      /*logic_elements=*/5980,
      /*memory_bits=*/92160,  // 20 M4K
      /*memory_block_bits=*/4608,
      /*memory_blocks=*/20,
      /*supports_async_rom=*/false,
      /*user_io=*/98,
      kCycloneC6};
  return d;
}

const Device& ep1c3t100c6() {
  static const Device d{
      "EP1C3T100C6", Family::kCyclone,
      /*logic_elements=*/2910,
      /*memory_bits=*/59904,  // 13 M4K
      /*memory_block_bits=*/4608,
      /*memory_blocks=*/13,
      /*supports_async_rom=*/false,
      /*user_io=*/65,
      kCycloneC6};
  return d;
}

const std::vector<const Device*>& all_devices() {
  static const std::vector<const Device*> v{
      &ep1k100fc484_1(), &ep1k50tc144_1(), &ep1c20f400c6(),
      &ep1c12f324c6(),   &ep1c6t144c6(),   &ep1c3t100c6()};
  return v;
}

const Device* find_device(const std::string& name) {
  for (const Device* d : all_devices())
    if (d->name == name) return d;
  return nullptr;
}

}  // namespace aesip::fpga
