#include "farm/session.hpp"

#include <algorithm>

namespace aesip::farm {

SessionTable::SessionTable(int workers, std::size_t max_sessions)
    : slots_(workers > 0 ? static_cast<std::size_t>(workers) : 1),
      max_sessions_(max_sessions ? max_sessions : 1) {}

int SessionTable::touch_slot_with_key_locked(const KeyBytes& key) {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].enabled && slots_[i].key && *slots_[i].key == key) {
      slots_[i].last_used = ++tick_;
      return static_cast<int>(i);
    }
  }
  return -1;
}

int SessionTable::evict_lru_slot_locked(const KeyBytes& key) {
  // LRU victim among enabled slots; if every worker is disabled, fall back
  // to a plain LRU over all of them — routing must never deadlock.
  std::size_t victim = slots_.size();
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].enabled) continue;
    if (victim == slots_.size() || slots_[i].last_used < slots_[victim].last_used) victim = i;
  }
  if (victim == slots_.size()) {
    victim = 0;
    for (std::size_t i = 1; i < slots_.size(); ++i)
      if (slots_[i].last_used < slots_[victim].last_used) victim = i;
  }
  slots_[victim].key = key;
  slots_[victim].last_used = ++tick_;
  return static_cast<int>(victim);
}

void SessionTable::insert_session_locked(std::uint64_t session_id, const KeyBytes& key,
                                         int worker) {
  if (sessions_.size() >= max_sessions_ && !sessions_.count(session_id)) {
    auto lru = sessions_.begin();
    for (auto it = sessions_.begin(); it != sessions_.end(); ++it)
      if (it->second.last_used < lru->second.last_used) lru = it;
    sessions_.erase(lru);
    ++counters_.session_evictions;
  }
  auto& s = sessions_[session_id];
  s.key = key;
  s.worker = worker;
  s.last_used = ++tick_;
}

SessionTable::Route SessionTable::route(std::uint64_t session_id, const KeyBytes& key) {
  std::lock_guard lk(mu_);
  Route r;

  const auto it = sessions_.find(session_id);
  if (it != sessions_.end() && it->second.key == key) {
    // Known session. Its preferred worker may have been re-keyed under
    // another session since — follow the key, not the stale binding.
    const int prev = it->second.worker;
    const int w = touch_slot_with_key_locked(key);
    r.worker = w >= 0 ? w : evict_lru_slot_locked(key);
    r.key_hot = w >= 0;
    if (r.worker != prev && prev >= 0 && prev < static_cast<int>(slots_.size()) &&
        !slots_[static_cast<std::size_t>(prev)].enabled)
      ++counters_.sessions_migrated;  // its old worker is quarantined
    it->second.worker = r.worker;
    it->second.last_used = ++tick_;
  } else {
    // New session (or an existing one that changed its key: treat as new).
    r.session_new = true;
    const int w = touch_slot_with_key_locked(key);
    r.worker = w >= 0 ? w : evict_lru_slot_locked(key);
    r.key_hot = w >= 0;
    insert_session_locked(session_id, key, r.worker);
  }

  if (r.key_hot)
    ++counters_.key_hits;
  else
    ++counters_.key_loads;
  counters_.sessions_live = sessions_.size();
  return r;
}

int SessionTable::next_round_robin(const KeyBytes& key) {
  std::lock_guard lk(mu_);
  // Skip quarantined workers; after a full lap with none enabled, take the
  // next slot regardless (same never-deadlock fallback as routing).
  int w = rr_next_;
  for (std::size_t tries = 0; tries < slots_.size(); ++tries) {
    if (slots_[static_cast<std::size_t>(w)].enabled) break;
    w = (w + 1) % static_cast<int>(slots_.size());
  }
  rr_next_ = (w + 1) % static_cast<int>(slots_.size());
  auto& slot = slots_[static_cast<std::size_t>(w)];
  if (slot.key && *slot.key == key)
    ++counters_.key_hits;
  else
    ++counters_.key_loads;
  slot.key = key;
  slot.last_used = ++tick_;
  return w;
}

void SessionTable::set_worker_enabled(int worker, bool enabled) {
  std::lock_guard lk(mu_);
  if (worker < 0 || worker >= static_cast<int>(slots_.size())) return;
  slots_[static_cast<std::size_t>(worker)].enabled = enabled;
}

bool SessionTable::worker_enabled(int worker) const {
  std::lock_guard lk(mu_);
  if (worker < 0 || worker >= static_cast<int>(slots_.size())) return false;
  return slots_[static_cast<std::size_t>(worker)].enabled;
}

int SessionTable::workers_enabled() const {
  std::lock_guard lk(mu_);
  int n = 0;
  for (const auto& s : slots_)
    if (s.enabled) ++n;
  return n;
}

void SessionTable::end_session(std::uint64_t session_id) {
  std::lock_guard lk(mu_);
  sessions_.erase(session_id);
  counters_.sessions_live = sessions_.size();
}

SessionTable::Counters SessionTable::counters() const {
  std::lock_guard lk(mu_);
  return counters_;
}

}  // namespace aesip::farm
