// The IP farm: a concurrent encryption service over many simulated cores.
//
// The paper's pitch is a core cheap enough to stamp out many times on one
// FPGA; this layer is the host-side system that pitch implies. N worker
// threads each own a *private* engine::CipherEngine (behavioral RTL by
// default; software or gate-netlist via FarmConfig::engine) — cores are
// never shared across threads, so the execution hot path takes no locks at
// all. In front of the workers sit bounded per-worker queues
// (any thread may submit: MPMC, and the bound is the backpressure), and a
// SessionTable that routes each request to the worker whose core already
// holds its key, exploiting the on-the-fly key schedule: re-keying costs
// bus cycles (+40 setup cycles for decrypt-capable devices), reuse is free.
//
// Workers drain up to FarmConfig::dispatch_batch jobs per queue wake-up and
// run each job's block-parallel work through CipherEngine::process_batch
// (engine/batch_modes.hpp), so a lane-packed netlist engine sees full
// 64-wide batches under load instead of one block per evaluator pass.
//
// Requests carry mode (ECB/CBC/CTR), direction, key, IV and payload.
// ECB/CBC payloads run on one core (CBC is a chain — it cannot split).
// Large CTR payloads fan out: the payload is cut into chunk_blocks-sized
// pieces, each seeded with aes::ctr_counter_at(iv, first_block), scattered
// round-robin over all workers, and spliced back together in order by the
// last chunk to finish — the software analogue of pipelining a stream
// across replicated datapaths.
//
// Completion is a std::future<Result>: submit() enqueues (blocking when the
// target queue is full), try_submit() sheds load instead of blocking, and
// process() is the synchronous convenience. Results complete out of order
// across sessions by design; per-session order holds only if the caller
// serializes (futures are the ordering primitive).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "farm/queue.hpp"
#include "farm/session.hpp"
#include "farm/stats.hpp"
#include "obs/histogram.hpp"
#include "obs/tracer.hpp"

namespace aesip::farm {

class WorkerContext;  // worker-thread-private engine state; defined in farm.cpp

enum class Mode { kEcb, kCbc, kCtr };

const char* mode_name(Mode m) noexcept;

struct FarmConfig {
  int workers = 4;                       ///< simulated cores (>=1)
  std::size_t queue_capacity = 64;       ///< per-worker queue bound
  std::size_t max_sessions = 64;         ///< session-binding table size
  std::size_t ctr_chunk_blocks = 32;     ///< fan-out chunk size, in blocks
  std::size_t ctr_fanout_min_blocks = 64;///< payloads below this stay on one core
  std::size_t dispatch_batch = 16;       ///< jobs a worker drains per queue wake-up
  double clock_ns = 14.0;                ///< Tclk for simulated-domain reporting
  bool tracing = false;                  ///< record per-job events (Chrome trace)
  std::size_t trace_capacity = 8192;     ///< events kept per worker ring

  /// Which CipherEngine each worker owns. Netlist farms synthesize ONE
  /// shared immutable gate netlist in the Farm constructor; each worker
  /// evaluates it privately.
  engine::EngineKind engine = engine::EngineKind::kBehavioral;
  /// Per-worker round-engine variant mix: worker i runs
  /// worker_variants[i % size()]. Empty (the default) keeps every worker
  /// on the paper's iterative core. Netlist farms synthesize one shared
  /// netlist PER DISTINCT VARIANT, cached for the farm's lifetime.
  std::vector<arch::VariantSpec> worker_variants;
  /// Custom engine source; overrides `engine` (and `worker_variants`) when
  /// set. Called once per worker, on that worker's thread.
  std::function<std::unique_ptr<engine::CipherEngine>()> engine_factory;

  /// Cross-check policy: fraction of completed jobs (0..1) each worker
  /// re-runs through the software reference after the engine answered.  A
  /// mismatch means the engine is silently corrupted (an SEU, a bad swap):
  /// the job is answered with the *oracle's* bytes — clients never see the
  /// corruption — and, when heal_on_mismatch, the worker quarantines
  /// itself inline, rebuilds a fresh engine and replays its key state
  /// before touching the next job. 0 disables checking (the default).
  double spot_check_fraction = 0.0;
  bool heal_on_mismatch = true;
  /// Adaptive spot-check controller: after a mismatch the worker samples at
  /// `spot_check_boost_fraction` (clamped up to at least the base rate)
  /// until `spot_check_decay_jobs` consecutive clean checks pass, then
  /// decays back to the base rate.  0 keeps the static policy.  Boost
  /// episodes and boosted checks are counted in FarmStats / FleetStatus.
  double spot_check_boost_fraction = 0.0;
  std::uint64_t spot_check_decay_jobs = 64;
};

struct Request {
  std::uint64_t session_id = 0;
  Mode mode = Mode::kCbc;
  bool encrypt = true;           ///< CTR ignores this (XOR is symmetric)
  KeyBytes key{};                ///< 16/24/32 bytes: the length picks AES-128/192/256
  Key128 iv{};                   ///< IV (CBC) / initial counter (CTR); unused by ECB
  std::vector<std::uint8_t> payload;  ///< whole blocks for ECB/CBC; any length for CTR
};

struct Result {
  std::vector<std::uint8_t> data;
  int worker = -1;               ///< executing worker; -1 when fanned out
  bool key_was_hot = false;      ///< routed to a core already holding the key
  std::uint64_t cycles = 0;      ///< simulated cycles spent (summed over chunks)
  std::uint64_t setup_cycles = 0;///< of which key setup
  std::uint64_t chunks = 1;      ///< 1, or the fan-out width
  bool replayed = false;         ///< spot-check caught a mismatch; data is the oracle's
};

/// Outcome of one live engine hot-swap (Farm::swap_engine).
struct SwapReport {
  int worker = -1;
  std::string from;               ///< engine name before the swap
  std::string to;                 ///< engine name after
  std::uint64_t pause_us = 0;     ///< how long the worker was quiesced
  std::uint64_t setup_cycles = 0; ///< key-state replay cost on the fresh engine
  bool key_replayed = false;      ///< the resident key was carried over
};

class Farm {
 public:
  explicit Farm(const FarmConfig& cfg = {});
  ~Farm();

  Farm(const Farm&) = delete;
  Farm& operator=(const Farm&) = delete;

  /// Enqueue a request; blocks while the routed worker's queue is full
  /// (bounded-buffer backpressure). Throws std::invalid_argument for
  /// non-block-multiple ECB/CBC payloads.
  std::future<Result> submit(Request req);

  /// Non-blocking submit: nullopt (and stats().rejected++) when the routed
  /// queue is full. Never fans out — load shedding keeps one decision point.
  std::optional<std::future<Result>> try_submit(Request req);

  /// submit() + get(): the synchronous client call.
  Result process(Request req) { return submit(std::move(req)).get(); }

  /// Forget a session binding (its key may stay resident in a slot).
  void end_session(std::uint64_t session_id) { sessions_.end_session(session_id); }

  // --- fleet control plane (live reconfiguration; see docs/fleet.md) --------
  /// Hot-swap `worker`'s engine to `kind` without draining the farm: a
  /// control job jumps the worker's queue, the worker finishes its current
  /// job, builds the fresh engine, replays its resident key through the
  /// rekey() fast path and resumes — every queued job runs on the new
  /// engine, none are dropped. The future resolves once the swap executed.
  /// Throws std::out_of_range for a bad worker index.
  std::future<SwapReport> swap_engine(int worker, engine::EngineKind kind);

  /// Hot-swap to a specific round-engine variant of `kind` — the same
  /// quiesce/replay/resume dance, but the fresh core may have a different
  /// microarchitecture (e.g. paper core -> pipe5-xtime). Netlist variants
  /// reuse (or lazily add to) the farm's per-variant netlist cache.
  std::future<SwapReport> swap_engine(int worker, engine::EngineKind kind,
                                      const arch::VariantSpec& variant);

  /// Chaos hook: flip persistent state at `site` (a DFF index) inside
  /// `worker`'s live engine, between jobs — the software model of a
  /// standby SEU. Resolves false when the engine kind has no gate-level
  /// state to upset. Throws std::out_of_range for a bad worker index.
  std::future<bool> inject_fault(int worker, std::size_t site);

  /// Quarantine control: a disabled worker takes no new routes and its
  /// sessions migrate to other workers on their next request; already
  /// queued jobs still execute (zero loss). Counted in stats().quarantines
  /// on the disable edge.
  void set_worker_enabled(int worker, bool enabled);
  bool worker_enabled(int worker) const { return sessions_.worker_enabled(worker); }

  /// The shared immutable gate netlist, once any netlist engine has been
  /// built (at construction for netlist farms, lazily for swaps); null on
  /// farms that never ran a netlist engine. Fault-site classification
  /// (fleet::ChaosInjector) reads the graph through this.
  std::shared_ptr<const netlist::Netlist> shared_netlist() const;

  /// Consistent point-in-time snapshot; callable while traffic is running.
  FarmStats stats() const;

  /// Dump the per-worker event rings as Chrome trace_event JSON (load at
  /// chrome://tracing). No-op returning false unless FarmConfig::tracing.
  bool write_chrome_trace(std::ostream& os) const;

  const FarmConfig& config() const noexcept { return cfg_; }

 private:
  /// Reassembly state shared by the chunks of one fanned-out CTR request.
  struct FanState {
    std::promise<Result> promise;
    std::vector<std::vector<std::uint8_t>> parts;
    std::atomic<std::size_t> remaining{0};
    std::atomic<std::uint64_t> cycles{0};
    std::atomic<std::uint64_t> setup_cycles{0};
    std::atomic<bool> failed{false};
    std::atomic<bool> replayed{false};  ///< any chunk answered by the oracle
    std::size_t total_bytes = 0;
    std::chrono::steady_clock::time_point t_submit;
  };

  /// One unit of worker work: a whole request, one CTR chunk, or a fleet
  /// control action (engine swap / fault injection) that must run on the
  /// worker's own thread — engines are strictly thread-private, so every
  /// mutation travels through the queue to its owner.
  struct Job {
    Mode mode = Mode::kEcb;
    bool encrypt = true;
    KeyBytes key{};
    Key128 iv{};  ///< IV, or this chunk's starting counter
    std::vector<std::uint8_t> payload;
    bool key_hot_predicted = false;
    std::chrono::steady_clock::time_point t_submit;
    std::promise<Result> promise;        ///< whole-request jobs only
    std::shared_ptr<FanState> fan;       ///< chunk jobs only
    std::size_t chunk_index = 0;
    /// Control jobs: runs instead of cipher work (swap/inject). Pushed to
    /// the queue FRONT so the worker quiesces after at most one more job.
    std::function<void(class WorkerContext&, int)> control;
  };

  /// Per-worker counters, written only by that worker (relaxed atomics so
  /// stats() can snapshot mid-run); padded against false sharing.
  struct alignas(64) WorkerCounters {
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> blocks{0};
    std::atomic<std::uint64_t> cycles{0};
    std::atomic<std::uint64_t> setup_cycles{0};
    std::atomic<std::uint64_t> busy_ns{0};
  };

  static void validate(const Request& req);
  std::future<Result> submit_fanout(Request req);
  void worker_main(int index);
  void execute(Job& job, WorkerContext& ctx, int index);
  void record_latency(std::chrono::steady_clock::time_point t_submit);

  /// The variant worker `index` is configured to run.
  arch::VariantSpec variant_for_worker(int index) const;
  /// Factory for `kind` running `variant` at any requested key size (the
  /// int argument overrides variant.key_bits), sharing (and lazily adding
  /// to) the farm-wide per-variant netlist cache.  The netlist for the
  /// variant's own key size is synthesized eagerly, so swap_engine pays
  /// synthesis on the control plane, not the worker.
  std::function<std::unique_ptr<engine::CipherEngine>(int)> factory_for(
      engine::EngineKind kind, const arch::VariantSpec& variant);
  /// The shared immutable netlist for `spec` (synthesizes on first use).
  std::shared_ptr<const netlist::Netlist> netlist_for(const arch::VariantSpec& spec);
  /// Front-push a control job onto `worker`'s queue (range-checked).
  void push_control(int worker, std::function<void(WorkerContext&, int)> fn);
  /// Inline quarantine-rebuild on the owning thread; returns the pause in us.
  std::uint64_t heal_worker(WorkerContext& ctx, int index);

  FarmConfig cfg_;
  const char* engine_name_ = "custom";  ///< for stats; kind name or "custom"
  /// The lane backend behind the workers' process_batch ("none" until the
  /// first worker engine is built; netlist engines report their resolved
  /// netlist::BatchBackend).  Published by worker threads at engine
  /// construction, read lock-free by stats().
  std::atomic<const char*> batch_backend_{nullptr};
  std::atomic<std::size_t> batch_lanes_{0};
  /// Per-worker engine factory + label (the configured variant mix);
  /// filled at construction, read by each worker at thread start.  Each
  /// factory takes the key size (bits) the engine must be geared for.
  std::vector<std::function<std::unique_ptr<engine::CipherEngine>(int)>> worker_factories_;
  std::vector<const char*> worker_labels_;
  std::vector<int> worker_key_bits_;  ///< each worker's configured (primary) key size
  SessionTable sessions_;
  std::vector<std::unique_ptr<BoundedQueue<Job>>> queues_;
  std::vector<WorkerCounters> counters_;
  std::vector<std::thread> threads_;
  std::chrono::steady_clock::time_point start_;

  // Observability: wait-free recording on the worker/submit paths; see
  // obs::Histogram / obs::Tracer for the memory-ordering story.
  obs::Histogram queue_depth_hist_;
  obs::Histogram queue_wait_us_hist_;
  std::unique_ptr<obs::Tracer> tracer_;

  std::atomic<std::uint64_t> requests_done_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> ctr_fanouts_{0};
  std::atomic<std::uint64_t> ctr_chunks_{0};

  // Fleet control plane. Each variant's netlist is synthesized once and
  // shared by every netlist engine the farm ever builds (construction or
  // swap alike); shared_netlist_ is the paper core's (the chaos-injection
  // classification target), variant_netlists_ holds the rest by name.
  mutable std::mutex netlist_mu_;
  std::shared_ptr<const netlist::Netlist> shared_netlist_;
  std::map<std::string, std::shared_ptr<const netlist::Netlist>> variant_netlists_;
  std::atomic<std::uint64_t> swaps_{0};
  std::atomic<std::uint64_t> heals_{0};
  std::atomic<std::uint64_t> quarantines_{0};
  std::atomic<std::uint64_t> spot_checks_{0};
  std::atomic<std::uint64_t> spot_mismatches_{0};
  std::atomic<std::uint64_t> replayed_jobs_{0};
  std::atomic<std::uint64_t> spot_boosts_{0};        ///< adaptive boost episodes entered
  std::atomic<std::uint64_t> spot_boost_checks_{0};  ///< checks sampled at the boosted rate
  std::atomic<int> workers_boosted_{0};              ///< gauge: workers currently boosted
  obs::Histogram swap_pause_us_hist_;
  /// Per-worker engine label, written by the owner on swap/heal, read by
  /// stats(); values are static-duration kind names (or "custom").
  std::unique_ptr<std::atomic<const char*>[]> worker_engine_;

  mutable std::mutex latency_mu_;
  std::vector<float> latencies_us_;  ///< capped reservoir, see record_latency
  std::uint64_t latency_count_ = 0;
};

}  // namespace aesip::farm
