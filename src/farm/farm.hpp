// The IP farm: a concurrent encryption service over many simulated cores.
//
// The paper's pitch is a core cheap enough to stamp out many times on one
// FPGA; this layer is the host-side system that pitch implies. N worker
// threads each own a *private* engine::CipherEngine (behavioral RTL by
// default; software or gate-netlist via FarmConfig::engine) — cores are
// never shared across threads, so the execution hot path takes no locks at
// all. In front of the workers sit bounded per-worker queues
// (any thread may submit: MPMC, and the bound is the backpressure), and a
// SessionTable that routes each request to the worker whose core already
// holds its key, exploiting the on-the-fly key schedule: re-keying costs
// bus cycles (+40 setup cycles for decrypt-capable devices), reuse is free.
//
// Workers drain up to FarmConfig::dispatch_batch jobs per queue wake-up and
// run each job's block-parallel work through CipherEngine::process_batch
// (engine/batch_modes.hpp), so a lane-packed netlist engine sees full
// 64-wide batches under load instead of one block per evaluator pass.
//
// Requests carry mode (ECB/CBC/CTR), direction, key, IV and payload.
// ECB/CBC payloads run on one core (CBC is a chain — it cannot split).
// Large CTR payloads fan out: the payload is cut into chunk_blocks-sized
// pieces, each seeded with aes::ctr_counter_at(iv, first_block), scattered
// round-robin over all workers, and spliced back together in order by the
// last chunk to finish — the software analogue of pipelining a stream
// across replicated datapaths.
//
// Completion is a std::future<Result>: submit() enqueues (blocking when the
// target queue is full), try_submit() sheds load instead of blocking, and
// process() is the synchronous convenience. Results complete out of order
// across sessions by design; per-session order holds only if the caller
// serializes (futures are the ordering primitive).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "farm/queue.hpp"
#include "farm/session.hpp"
#include "farm/stats.hpp"
#include "obs/histogram.hpp"
#include "obs/tracer.hpp"

namespace aesip::farm {

enum class Mode { kEcb, kCbc, kCtr };

const char* mode_name(Mode m) noexcept;

struct FarmConfig {
  int workers = 4;                       ///< simulated cores (>=1)
  std::size_t queue_capacity = 64;       ///< per-worker queue bound
  std::size_t max_sessions = 64;         ///< session-binding table size
  std::size_t ctr_chunk_blocks = 32;     ///< fan-out chunk size, in blocks
  std::size_t ctr_fanout_min_blocks = 64;///< payloads below this stay on one core
  std::size_t dispatch_batch = 16;       ///< jobs a worker drains per queue wake-up
  double clock_ns = 14.0;                ///< Tclk for simulated-domain reporting
  bool tracing = false;                  ///< record per-job events (Chrome trace)
  std::size_t trace_capacity = 8192;     ///< events kept per worker ring

  /// Which CipherEngine each worker owns. Netlist farms synthesize ONE
  /// shared immutable gate netlist in the Farm constructor; each worker
  /// evaluates it privately.
  engine::EngineKind engine = engine::EngineKind::kBehavioral;
  /// Custom engine source; overrides `engine` when set. Called once per
  /// worker, on that worker's thread.
  std::function<std::unique_ptr<engine::CipherEngine>()> engine_factory;
};

struct Request {
  std::uint64_t session_id = 0;
  Mode mode = Mode::kCbc;
  bool encrypt = true;           ///< CTR ignores this (XOR is symmetric)
  Key128 key{};
  Key128 iv{};                   ///< IV (CBC) / initial counter (CTR); unused by ECB
  std::vector<std::uint8_t> payload;  ///< whole blocks for ECB/CBC; any length for CTR
};

struct Result {
  std::vector<std::uint8_t> data;
  int worker = -1;               ///< executing worker; -1 when fanned out
  bool key_was_hot = false;      ///< routed to a core already holding the key
  std::uint64_t cycles = 0;      ///< simulated cycles spent (summed over chunks)
  std::uint64_t setup_cycles = 0;///< of which key setup
  std::uint64_t chunks = 1;      ///< 1, or the fan-out width
};

class Farm {
 public:
  explicit Farm(const FarmConfig& cfg = {});
  ~Farm();

  Farm(const Farm&) = delete;
  Farm& operator=(const Farm&) = delete;

  /// Enqueue a request; blocks while the routed worker's queue is full
  /// (bounded-buffer backpressure). Throws std::invalid_argument for
  /// non-block-multiple ECB/CBC payloads.
  std::future<Result> submit(Request req);

  /// Non-blocking submit: nullopt (and stats().rejected++) when the routed
  /// queue is full. Never fans out — load shedding keeps one decision point.
  std::optional<std::future<Result>> try_submit(Request req);

  /// submit() + get(): the synchronous client call.
  Result process(Request req) { return submit(std::move(req)).get(); }

  /// Forget a session binding (its key may stay resident in a slot).
  void end_session(std::uint64_t session_id) { sessions_.end_session(session_id); }

  /// Consistent point-in-time snapshot; callable while traffic is running.
  FarmStats stats() const;

  /// Dump the per-worker event rings as Chrome trace_event JSON (load at
  /// chrome://tracing). No-op returning false unless FarmConfig::tracing.
  bool write_chrome_trace(std::ostream& os) const;

  const FarmConfig& config() const noexcept { return cfg_; }

 private:
  /// Reassembly state shared by the chunks of one fanned-out CTR request.
  struct FanState {
    std::promise<Result> promise;
    std::vector<std::vector<std::uint8_t>> parts;
    std::atomic<std::size_t> remaining{0};
    std::atomic<std::uint64_t> cycles{0};
    std::atomic<std::uint64_t> setup_cycles{0};
    std::atomic<bool> failed{false};
    std::size_t total_bytes = 0;
    std::chrono::steady_clock::time_point t_submit;
  };

  /// One unit of worker work: a whole request, or one CTR chunk.
  struct Job {
    Mode mode = Mode::kEcb;
    bool encrypt = true;
    Key128 key{};
    Key128 iv{};  ///< IV, or this chunk's starting counter
    std::vector<std::uint8_t> payload;
    bool key_hot_predicted = false;
    std::chrono::steady_clock::time_point t_submit;
    std::promise<Result> promise;        ///< whole-request jobs only
    std::shared_ptr<FanState> fan;       ///< chunk jobs only
    std::size_t chunk_index = 0;
  };

  /// Per-worker counters, written only by that worker (relaxed atomics so
  /// stats() can snapshot mid-run); padded against false sharing.
  struct alignas(64) WorkerCounters {
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> blocks{0};
    std::atomic<std::uint64_t> cycles{0};
    std::atomic<std::uint64_t> setup_cycles{0};
    std::atomic<std::uint64_t> busy_ns{0};
  };

  static void validate(const Request& req);
  std::future<Result> submit_fanout(Request req);
  void worker_main(int index);
  void execute(Job& job, class WorkerContext& ctx, int index);
  void record_latency(std::chrono::steady_clock::time_point t_submit);

  FarmConfig cfg_;
  std::function<std::unique_ptr<engine::CipherEngine>()> engine_factory_;
  const char* engine_name_ = "custom";  ///< for stats; kind name or "custom"
  SessionTable sessions_;
  std::vector<std::unique_ptr<BoundedQueue<Job>>> queues_;
  std::vector<WorkerCounters> counters_;
  std::vector<std::thread> threads_;
  std::chrono::steady_clock::time_point start_;

  // Observability: wait-free recording on the worker/submit paths; see
  // obs::Histogram / obs::Tracer for the memory-ordering story.
  obs::Histogram queue_depth_hist_;
  obs::Histogram queue_wait_us_hist_;
  std::unique_ptr<obs::Tracer> tracer_;

  std::atomic<std::uint64_t> requests_done_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> ctr_fanouts_{0};
  std::atomic<std::uint64_t> ctr_chunks_{0};

  mutable std::mutex latency_mu_;
  std::vector<float> latencies_us_;  ///< capped reservoir, see record_latency
  std::uint64_t latency_count_ = 0;
};

}  // namespace aesip::farm
