// Session table: key-slot affinity scheduling for the IP farm.
//
// The paper's core derives round keys on the fly, so a key *load* costs
// cycles (a bus write, plus a 40-cycle setup pass on decrypt-capable
// devices) while key *reuse* is free. Each worker owns exactly one core and
// a core holds exactly one resident key, so the farm has N one-key "slots".
// The table routes a session's requests to the worker whose core already
// holds its key; when no slot holds the key, the least-recently-used slot
// is re-keyed — classic LRU cache, except the cache lines are simulated
// FPGA cores.
//
// Sessions (user connections) are a second, larger LRU: `max_sessions`
// bounds the id->key binding table the way a front-end bounds its
// connection state. Evicting a session forgets only the binding — the key
// may still sit in a slot and be re-hit by another session using it.
//
// All methods take the table mutex; routing happens once per request on the
// submit path, never inside a worker's simulation loop.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

namespace aesip::farm {

using Key128 = std::array<std::uint8_t, 16>;

/// A Rijndael key of any supported length (16/24/32 bytes; the length
/// selects AES-128/192/256).  Fixed-capacity value type: the unused tail
/// stays zero, so the defaulted comparison is contents-and-length.  The
/// implicit array constructors keep 128-bit call sites terse.
struct KeyBytes {
  std::array<std::uint8_t, 32> bytes{};
  std::uint8_t len = 16;

  KeyBytes() = default;
  KeyBytes(const std::array<std::uint8_t, 16>& k) { assign(k); }
  KeyBytes(const std::array<std::uint8_t, 24>& k) { assign(k); }
  KeyBytes(const std::array<std::uint8_t, 32>& k) { assign(k); }

  /// nullopt unless `key` has a legal Rijndael key length.
  static std::optional<KeyBytes> from(std::span<const std::uint8_t> key) {
    if (key.size() != 16 && key.size() != 24 && key.size() != 32) return std::nullopt;
    KeyBytes k;
    k.assign(key);
    return k;
  }

  std::span<const std::uint8_t> view() const noexcept { return {bytes.data(), len}; }
  int bits() const noexcept { return static_cast<int>(len) * 8; }

  friend bool operator==(const KeyBytes&, const KeyBytes&) = default;

 private:
  void assign(std::span<const std::uint8_t> key) {
    bytes.fill(0);
    std::copy(key.begin(), key.end(), bytes.begin());
    len = static_cast<std::uint8_t>(key.size());
  }
};

class SessionTable {
 public:
  struct Route {
    int worker = 0;        ///< which worker's queue to push to
    bool key_hot = false;  ///< slot already predicted to hold the key (no setup)
    bool session_new = false;
  };

  struct Counters {
    std::uint64_t key_hits = 0;          ///< routed to a slot already holding the key
    std::uint64_t key_loads = 0;         ///< slot re-keyed (LRU victim chosen)
    std::uint64_t session_evictions = 0; ///< session bindings dropped at capacity
    std::uint64_t sessions_live = 0;
    std::uint64_t sessions_migrated = 0; ///< sessions re-routed off a disabled worker
  };

  SessionTable(int workers, std::size_t max_sessions);

  /// Pick the worker for one request of `session_id` under `key`.
  Route route(std::uint64_t session_id, const KeyBytes& key);

  /// Affinity-free worker pick for fan-out chunks: round-robin over all
  /// slots (a CTR fan-out deliberately trades key reuse for parallelism).
  /// Marks the slot as re-keyed if it did not hold `key`.
  int next_round_robin(const KeyBytes& key);

  /// Drop a session binding (connection closed). No-op if unknown.
  void end_session(std::uint64_t session_id);

  /// Quarantine plumbing: a disabled worker receives no new routes — its
  /// sessions migrate (re-key elsewhere, counted in sessions_migrated) on
  /// their next request. If every worker is disabled, routing falls back
  /// to ignoring the mask rather than deadlocking.
  void set_worker_enabled(int worker, bool enabled);
  bool worker_enabled(int worker) const;
  int workers_enabled() const;

  Counters counters() const;
  int workers() const noexcept { return static_cast<int>(slots_.size()); }

 private:
  struct Slot {
    std::optional<KeyBytes> key;
    std::uint64_t last_used = 0;  ///< LRU tick
    bool enabled = true;          ///< quarantined workers take no new routes
  };
  struct Session {
    KeyBytes key{};
    int worker = 0;
    std::uint64_t last_used = 0;  ///< LRU tick for the session table
  };

  int touch_slot_with_key_locked(const KeyBytes& key);  ///< -1 if no slot holds it
  int evict_lru_slot_locked(const KeyBytes& key);
  void insert_session_locked(std::uint64_t session_id, const KeyBytes& key, int worker);

  mutable std::mutex mu_;
  std::vector<Slot> slots_;
  std::unordered_map<std::uint64_t, Session> sessions_;
  std::size_t max_sessions_;
  std::uint64_t tick_ = 0;
  int rr_next_ = 0;
  Counters counters_;
};

}  // namespace aesip::farm
