#include "farm/farm.hpp"

#include <algorithm>
#include <cstdio>
#include <random>
#include <span>
#include <stdexcept>

#include "aes/cipher.hpp"
#include "aes/modes.hpp"
#include "engine/batch_modes.hpp"
#include "engine/engine.hpp"
#include "report/json.hpp"

namespace aesip::farm {

namespace {
/// Reservoir bound for latency samples (~512 KiB of floats).
constexpr std::size_t kLatencyCap = 1u << 17;

/// Trace-event name table; TraceEvent::name indexes into this. The first
/// three entries line up with the Mode enum so a job's name is its mode.
constexpr const char* kTraceNames[] = {"ecb", "cbc", "ctr"};

std::size_t block_count(std::size_t bytes) { return (bytes + aes::kBlock - 1) / aes::kBlock; }

/// Stats label for an engine kind running a variant: the bare kind name
/// for the paper core (backward-compatible), "kind:variant" otherwise.
const char* engine_label(engine::EngineKind kind, const arch::VariantSpec& variant) {
  if (variant == arch::VariantSpec{}) return engine::kind_name(kind);
  return arch::intern_label(std::string(engine::kind_name(kind)) + ":" + variant.name());
}
}  // namespace

const char* mode_name(Mode m) noexcept {
  switch (m) {
    case Mode::kEcb: return "ecb";
    case Mode::kCbc: return "cbc";
    case Mode::kCtr: return "ctr";
  }
  return "?";
}

// One worker's private hardware: a CipherEngine plus the BlockCipher128
// view the aes:: modes need. Constructed on the worker's own thread;
// nothing in here is ever touched by another thread, which is the farm's
// whole locking story.
class WorkerContext {
 public:
  using KbFactory = std::function<std::unique_ptr<engine::CipherEngine>(int)>;

  WorkerContext(KbFactory make, const char* lbl, unsigned seed, int key_bits)
      : factory(std::move(make)),
        label(lbl),
        primary_bits(key_bits),
        engine(factory(primary_bits)),
        spot_rng(seed * 2654435761u + 1u) {}

  /// The engine that runs a `bits`-bit key: the worker's primary engine
  /// when the size matches its configured geometry, else a lazily built
  /// sibling of the same kind/variant geared for `bits` (cached until the
  /// next swap or heal).  Cycle engines are built for one key size, so a
  /// key-length mix on one worker costs one engine per distinct size.
  engine::CipherEngine& engine_for(int bits) {
    if (bits == primary_bits) return *engine;
    auto& slot = siblings[bits];
    if (!slot) slot = factory(bits);
    return *slot;
  }

  /// Install a fresh primary engine, dropping every sibling (they were
  /// built by the old factory). Factory, label and geometry only change on
  /// a kind/variant swap, not on a same-kind heal.
  void adopt(std::unique_ptr<engine::CipherEngine> fresh, KbFactory new_factory,
             const char* new_label, int new_primary_bits) {
    engine = std::move(fresh);
    siblings.clear();
    if (new_factory) factory = std::move(new_factory);
    if (new_label) label = new_label;
    if (new_primary_bits) primary_bits = new_primary_bits;
  }

  /// Bernoulli(fraction) draw for the spot-check policy.
  bool sample(double fraction) {
    if (fraction >= 1.0) return true;
    return std::uniform_real_distribution<double>(0.0, 1.0)(spot_rng) < fraction;
  }

  KbFactory factory;
  const char* label;  ///< static-duration engine name for stats
  int primary_bits;   ///< the configured geometry (siblings carry the rest)
  std::unique_ptr<engine::CipherEngine> engine;
  std::map<int, std::unique_ptr<engine::CipherEngine>> siblings;  ///< by key bits
  KeyBytes last_key{};   ///< most recent key this worker ran — swap replays it
  bool has_key = false;
  std::minstd_rand spot_rng;
  // Adaptive spot-check state (FarmConfig::spot_check_boost_fraction).
  bool boosted = false;
  std::uint64_t clean_streak = 0;  ///< consecutive clean checks while boosted
};

Farm::Farm(const FarmConfig& cfg) : cfg_(cfg), sessions_(cfg.workers, cfg.max_sessions) {
  if (cfg_.workers < 1) cfg_.workers = 1;
  if (cfg_.ctr_chunk_blocks == 0) cfg_.ctr_chunk_blocks = 1;
  worker_factories_.resize(static_cast<std::size_t>(cfg_.workers));
  worker_labels_.resize(static_cast<std::size_t>(cfg_.workers));
  worker_key_bits_.assign(static_cast<std::size_t>(cfg_.workers), 128);
  if (cfg_.engine_factory) {
    // Custom factories are key-size-blind: the one engine they build must
    // accept whatever key lengths the traffic carries.
    for (int i = 0; i < cfg_.workers; ++i) {
      worker_factories_[static_cast<std::size_t>(i)] =
          [make = cfg_.engine_factory](int) { return make(); };
      worker_labels_[static_cast<std::size_t>(i)] = engine_name_;
    }
  } else {
    engine_name_ = engine::kind_name(cfg_.engine);
    for (int i = 0; i < cfg_.workers; ++i) {
      const arch::VariantSpec v = variant_for_worker(i);
      worker_factories_[static_cast<std::size_t>(i)] = factory_for(cfg_.engine, v);
      worker_labels_[static_cast<std::size_t>(i)] = engine_label(cfg_.engine, v);
      worker_key_bits_[static_cast<std::size_t>(i)] = v.key_bits;
    }
  }
  worker_engine_ = std::make_unique<std::atomic<const char*>[]>(
      static_cast<std::size_t>(cfg_.workers));
  for (int i = 0; i < cfg_.workers; ++i)
    worker_engine_[static_cast<std::size_t>(i)].store(worker_labels_[static_cast<std::size_t>(i)],
                                                      std::memory_order_relaxed);
  counters_ = std::vector<WorkerCounters>(static_cast<std::size_t>(cfg_.workers));
  queues_.reserve(static_cast<std::size_t>(cfg_.workers));
  for (int i = 0; i < cfg_.workers; ++i)
    queues_.push_back(std::make_unique<BoundedQueue<Job>>(cfg_.queue_capacity));
  if (cfg_.tracing)
    tracer_ = std::make_unique<obs::Tracer>(static_cast<std::size_t>(cfg_.workers),
                                            cfg_.trace_capacity);
  start_ = std::chrono::steady_clock::now();
  threads_.reserve(static_cast<std::size_t>(cfg_.workers));
  for (int i = 0; i < cfg_.workers; ++i) threads_.emplace_back([this, i] { worker_main(i); });
}

Farm::~Farm() {
  for (auto& q : queues_) q->close();
  for (auto& t : threads_) t.join();
}

void Farm::validate(const Request& req) {
  if (req.mode != Mode::kCtr && req.payload.size() % aes::kBlock != 0)
    throw std::invalid_argument(std::string("farm: ") + mode_name(req.mode) +
                                " payload must be a whole number of 16-byte blocks");
}

std::future<Result> Farm::submit(Request req) {
  validate(req);
  const std::size_t blocks = block_count(req.payload.size());
  if (req.mode == Mode::kCtr && cfg_.workers > 1 && blocks >= cfg_.ctr_fanout_min_blocks)
    return submit_fanout(std::move(req));

  const auto route = sessions_.route(req.session_id, req.key);
  Job job;
  job.mode = req.mode;
  job.encrypt = req.encrypt;
  job.key = req.key;
  job.iv = req.iv;
  job.payload = std::move(req.payload);
  job.key_hot_predicted = route.key_hot;
  job.t_submit = std::chrono::steady_clock::now();
  auto future = job.promise.get_future();
  if (!queues_[static_cast<std::size_t>(route.worker)]->push(std::move(job)))
    throw std::runtime_error("farm: submit after shutdown");
  queue_depth_hist_.record(queues_[static_cast<std::size_t>(route.worker)]->size());
  return future;
}

std::optional<std::future<Result>> Farm::try_submit(Request req) {
  validate(req);
  const auto route = sessions_.route(req.session_id, req.key);
  Job job;
  job.mode = req.mode;
  job.encrypt = req.encrypt;
  job.key = req.key;
  job.iv = req.iv;
  job.payload = std::move(req.payload);
  job.key_hot_predicted = route.key_hot;
  job.t_submit = std::chrono::steady_clock::now();
  auto future = job.promise.get_future();
  if (!queues_[static_cast<std::size_t>(route.worker)]->try_push(std::move(job))) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  queue_depth_hist_.record(queues_[static_cast<std::size_t>(route.worker)]->size());
  return future;
}

std::future<Result> Farm::submit_fanout(Request req) {
  const std::size_t chunk_bytes = cfg_.ctr_chunk_blocks * aes::kBlock;
  const std::size_t n_chunks = (req.payload.size() + chunk_bytes - 1) / chunk_bytes;

  auto fan = std::make_shared<FanState>();
  fan->parts.resize(n_chunks);
  fan->remaining.store(n_chunks);
  fan->total_bytes = req.payload.size();
  fan->t_submit = std::chrono::steady_clock::now();
  auto future = fan->promise.get_future();

  ctr_fanouts_.fetch_add(1, std::memory_order_relaxed);
  ctr_chunks_.fetch_add(n_chunks, std::memory_order_relaxed);

  const std::span<const std::uint8_t, aes::kBlock> iv(req.iv.data(), aes::kBlock);
  const std::span<const std::uint8_t> payload(req.payload);
  for (std::size_t c = 0; c < n_chunks; ++c) {
    const std::size_t off = c * chunk_bytes;
    const std::size_t len = std::min(chunk_bytes, req.payload.size() - off);
    Job job;
    job.mode = Mode::kCtr;
    job.encrypt = req.encrypt;
    job.key = req.key;
    job.iv = aes::ctr_counter_at(iv, static_cast<std::uint64_t>(c * cfg_.ctr_chunk_blocks));
    job.payload.assign(payload.begin() + static_cast<std::ptrdiff_t>(off),
                       payload.begin() + static_cast<std::ptrdiff_t>(off + len));
    job.fan = fan;
    job.chunk_index = c;
    job.t_submit = fan->t_submit;
    const int worker = sessions_.next_round_robin(req.key);
    if (!queues_[static_cast<std::size_t>(worker)]->push(std::move(job)))
      throw std::runtime_error("farm: submit after shutdown");
    queue_depth_hist_.record(queues_[static_cast<std::size_t>(worker)]->size());
  }
  return future;
}

void Farm::worker_main(int index) {
  WorkerContext ctx(worker_factories_[static_cast<std::size_t>(index)],
                    worker_labels_[static_cast<std::size_t>(index)],
                    static_cast<unsigned>(index),
                    worker_key_bits_[static_cast<std::size_t>(index)]);
  // All workers of one farm resolve the same backend; last write wins.
  batch_backend_.store(ctx.engine->batch_backend(), std::memory_order_relaxed);
  batch_lanes_.store(ctx.engine->batch_lanes(), std::memory_order_relaxed);
  auto& queue = *queues_[static_cast<std::size_t>(index)];
  // Drain a burst per wake-up: under load a lane-packed engine (netlist)
  // then sees back-to-back jobs without a queue round-trip between them,
  // and each job's block-parallel work runs through the batch path below.
  for (;;) {
    auto jobs = queue.pop_batch(cfg_.dispatch_batch);
    if (jobs.empty()) break;
    for (auto& job : jobs) {
      if (job.control) {
        job.control(ctx, index);  // swap/inject: engine mutation on its owner
        continue;
      }
      execute(job, ctx, index);
    }
  }
}

void Farm::execute(Job& job, WorkerContext& ctx, int index) {
  auto& ctr = counters_[static_cast<std::size_t>(index)];
  const auto t_start = std::chrono::steady_clock::now();
  queue_wait_us_hist_.record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(t_start - job.t_submit).count()));
  try {
    // The job's key length picks the engine: the worker's primary core
    // when it matches, else a same-variant sibling geared for that size.
    engine::CipherEngine& eng = ctx.engine_for(job.key.bits());
    engine::EngineBlockCipher cipher(eng);
    const std::uint64_t c0 = eng.cycles();
    const std::uint64_t setup = eng.rekey(job.key.view());
    ctx.last_key = job.key;  // swap_engine replays this onto the fresh engine
    ctx.has_key = true;
    const std::span<const std::uint8_t, aes::kBlock> iv(job.iv.data(), aes::kBlock);

    // Block-parallel mode legs run through the engine's batch path (full
    // lanes on the netlist engine); CBC encryption is a chain and stays on
    // the scalar block-at-a-time cipher. Bit-identical either way.
    std::vector<std::uint8_t> out;
    switch (job.mode) {
      case Mode::kEcb:
        out = engine::ecb_crypt_batched(eng, job.payload, job.encrypt);
        break;
      case Mode::kCbc:
        out = job.encrypt ? aes::cbc_encrypt(cipher, iv, job.payload)
                          : engine::cbc_decrypt_batched(eng, iv, job.payload);
        break;
      case Mode::kCtr:
        out = engine::ctr_crypt_batched(eng, iv, job.payload);
        break;
    }
    // Capture the cycle delta now: a heal below replaces the engine (and
    // its cycle counter) before the accounting lines run.
    const std::uint64_t cycles = eng.cycles() - c0;

    // Spot-check policy: re-run a sampled fraction of jobs through the
    // software oracle (the geometry-matched aes::Rijndael). A mismatch
    // means the *engine* is corrupted (SEU, chaos injection) — the client
    // gets the oracle's bytes either way, so corruption is contained to
    // this worker and never observable outside.  The adaptive controller:
    // a mismatch raises this worker's sampling to the boost rate until
    // spot_check_decay_jobs consecutive checks come back clean.
    bool replayed = false;
    const double base_rate = cfg_.spot_check_fraction;
    const double boost_rate = std::max(cfg_.spot_check_boost_fraction, base_rate);
    const double rate = ctx.boosted ? boost_rate : base_rate;
    if (rate > 0.0 && ctx.sample(rate)) {
      spot_checks_.fetch_add(1, std::memory_order_relaxed);
      if (ctx.boosted) spot_boost_checks_.fetch_add(1, std::memory_order_relaxed);
      const aes::Rijndael ref = aes::Rijndael::for_key(job.key.view());
      std::vector<std::uint8_t> expected;
      switch (job.mode) {
        case Mode::kEcb:
          expected = job.encrypt ? aes::ecb_encrypt(ref, job.payload)
                                 : aes::ecb_decrypt(ref, job.payload);
          break;
        case Mode::kCbc:
          expected = job.encrypt ? aes::cbc_encrypt(ref, iv, job.payload)
                                 : aes::cbc_decrypt(ref, iv, job.payload);
          break;
        case Mode::kCtr:
          expected = aes::ctr_crypt(ref, iv, job.payload);
          break;
      }
      if (expected != out) {
        spot_mismatches_.fetch_add(1, std::memory_order_relaxed);
        replayed_jobs_.fetch_add(1, std::memory_order_relaxed);
        out = std::move(expected);  // answer with the correct bytes
        replayed = true;
        if (cfg_.spot_check_boost_fraction > 0.0) {
          if (!ctx.boosted) {
            ctx.boosted = true;
            spot_boosts_.fetch_add(1, std::memory_order_relaxed);
            workers_boosted_.fetch_add(1, std::memory_order_relaxed);
          }
          ctx.clean_streak = 0;
        }
        if (cfg_.heal_on_mismatch) {
          // Quarantine-and-heal inline, between jobs, on the owning thread:
          // no other thread can touch this engine, so the rebuild is
          // race-free and the next queued job runs on a clean core.
          swap_pause_us_hist_.record(heal_worker(ctx, index));
          heals_.fetch_add(1, std::memory_order_relaxed);
          quarantines_.fetch_add(1, std::memory_order_relaxed);
        }
      } else if (ctx.boosted && ++ctx.clean_streak >= cfg_.spot_check_decay_jobs) {
        ctx.boosted = false;
        ctx.clean_streak = 0;
        workers_boosted_.fetch_sub(1, std::memory_order_relaxed);
      }
    }

    const auto t_end = std::chrono::steady_clock::now();
    ctr.requests.fetch_add(1, std::memory_order_relaxed);
    ctr.blocks.fetch_add(block_count(job.payload.size()), std::memory_order_relaxed);
    ctr.cycles.fetch_add(cycles, std::memory_order_relaxed);
    ctr.setup_cycles.fetch_add(setup, std::memory_order_relaxed);
    ctr.busy_ns.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t_end - t_start).count()),
        std::memory_order_relaxed);
    if (tracer_) {
      obs::TraceEvent e;
      e.ts_us = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(t_start - start_).count());
      e.dur_us = static_cast<std::uint32_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(t_end - t_start).count());
      e.name = static_cast<std::uint16_t>(job.mode);
      e.track = static_cast<std::uint16_t>(index);
      e.arg = block_count(job.payload.size());
      e.arg2 = setup;
      tracer_->record(static_cast<std::size_t>(index), e);
    }

    if (job.fan) {
      auto& fan = *job.fan;
      fan.parts[job.chunk_index] = std::move(out);
      fan.cycles.fetch_add(cycles, std::memory_order_relaxed);
      fan.setup_cycles.fetch_add(setup, std::memory_order_relaxed);
      if (replayed) fan.replayed.store(true, std::memory_order_relaxed);
      if (fan.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        Result r;
        r.data.reserve(fan.total_bytes);
        for (auto& part : fan.parts) r.data.insert(r.data.end(), part.begin(), part.end());
        r.worker = -1;
        r.cycles = fan.cycles.load(std::memory_order_relaxed);
        r.setup_cycles = fan.setup_cycles.load(std::memory_order_relaxed);
        r.chunks = fan.parts.size();
        r.replayed = fan.replayed.load(std::memory_order_relaxed);
        record_latency(fan.t_submit);
        requests_done_.fetch_add(1, std::memory_order_relaxed);
        fan.promise.set_value(std::move(r));
      }
    } else {
      Result r;
      r.data = std::move(out);
      r.worker = index;
      r.key_was_hot = setup == 0;
      r.cycles = cycles;
      r.setup_cycles = setup;
      r.replayed = replayed;
      record_latency(job.t_submit);
      requests_done_.fetch_add(1, std::memory_order_relaxed);
      job.promise.set_value(std::move(r));
    }
  } catch (...) {
    if (job.fan) {
      // First failing chunk carries the exception; later chunks only
      // decrement so the shared state still drains.
      if (!job.fan->failed.exchange(true)) job.fan->promise.set_exception(std::current_exception());
      job.fan->remaining.fetch_sub(1, std::memory_order_acq_rel);
    } else {
      job.promise.set_exception(std::current_exception());
    }
  }
}

// --- fleet control plane -----------------------------------------------------

arch::VariantSpec Farm::variant_for_worker(int index) const {
  if (cfg_.worker_variants.empty()) return arch::VariantSpec{};
  return cfg_.worker_variants[static_cast<std::size_t>(index) % cfg_.worker_variants.size()];
}

std::shared_ptr<const netlist::Netlist> Farm::netlist_for(const arch::VariantSpec& spec) {
  // Synthesize once per variant (and key size — the name carries the @192/
  // @256 suffix), ever: the construction-time netlists and every later
  // swap or wide-key sibling share the same immutable gate graphs. The
  // paper core keeps its dedicated slot (shared_netlist()) because the
  // chaos injector classifies fault sites against it.
  std::lock_guard lk(netlist_mu_);
  if (spec == arch::VariantSpec{}) {
    if (!shared_netlist_) shared_netlist_ = engine::make_ip_netlist(core::IpMode::kBoth);
    return shared_netlist_;
  }
  auto& slot = variant_netlists_[spec.name()];
  if (!slot) slot = engine::make_variant_netlist(spec, core::IpMode::kBoth);
  return slot;
}

std::function<std::unique_ptr<engine::CipherEngine>(int)> Farm::factory_for(
    engine::EngineKind kind, const arch::VariantSpec& variant) {
  switch (kind) {
    case engine::EngineKind::kSoftware:
      // Variant- and geometry-blind: one software engine runs any key size.
      return [](int) -> std::unique_ptr<engine::CipherEngine> {
        return std::make_unique<engine::SoftwareEngine>(core::IpMode::kBoth);
      };
    case engine::EngineKind::kBehavioral:
      return [variant](int key_bits) -> std::unique_ptr<engine::CipherEngine> {
        arch::VariantSpec v = variant;
        v.key_bits = key_bits;
        return std::make_unique<engine::BehavioralEngine>(v, core::IpMode::kBoth);
      };
    case engine::EngineKind::kNetlist: {
      // Pre-synthesize the variant's own geometry so swap_engine pays the
      // synthesis on the control plane; other key sizes synthesize lazily
      // (on the worker, first wide-key job) into the same cache.
      netlist_for(variant);
      return [this, variant](int key_bits) -> std::unique_ptr<engine::CipherEngine> {
        arch::VariantSpec v = variant;
        v.key_bits = key_bits;
        return std::make_unique<engine::NetlistEngine>(netlist_for(v), v, core::IpMode::kBoth);
      };
    }
  }
  throw std::invalid_argument("farm: unknown engine kind");
}

void Farm::push_control(int worker, std::function<void(WorkerContext&, int)> fn) {
  if (worker < 0 || worker >= cfg_.workers)
    throw std::out_of_range("farm: worker index out of range");
  Job job;
  job.control = std::move(fn);
  job.t_submit = std::chrono::steady_clock::now();
  if (!queues_[static_cast<std::size_t>(worker)]->push_front(std::move(job)))
    throw std::runtime_error("farm: control after shutdown");
}

std::uint64_t Farm::heal_worker(WorkerContext& ctx, int index) {
  const auto t0 = std::chrono::steady_clock::now();
  auto fresh = ctx.factory(ctx.primary_bits);
  ctx.adopt(std::move(fresh), {}, nullptr, 0);  // same kind, factory, geometry
  // Replay the key onto the engine that matches its size (a sibling is
  // rebuilt lazily here when the last key was a different geometry).
  if (ctx.has_key) ctx.engine_for(ctx.last_key.bits()).load_key(ctx.last_key.view());
  worker_engine_[static_cast<std::size_t>(index)].store(ctx.label, std::memory_order_relaxed);
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        std::chrono::steady_clock::now() - t0)
                                        .count());
}

std::future<SwapReport> Farm::swap_engine(int worker, engine::EngineKind kind) {
  return swap_engine(worker, kind, arch::VariantSpec{});
}

std::future<SwapReport> Farm::swap_engine(int worker, engine::EngineKind kind,
                                          const arch::VariantSpec& variant) {
  auto factory = factory_for(kind, variant);  // synthesis (if any) happens HERE, not on the worker
  const char* label = engine_label(kind, variant);
  const int primary_bits = variant.key_bits;
  auto prom = std::make_shared<std::promise<SwapReport>>();
  auto future = prom->get_future();
  push_control(worker, [this, factory = std::move(factory), label, primary_bits,
                        prom](WorkerContext& ctx, int index) {
    try {
      SwapReport rep;
      rep.worker = index;
      rep.from = ctx.label;
      rep.to = label;
      const auto t0 = std::chrono::steady_clock::now();
      auto fresh = factory(primary_bits);
      ctx.adopt(std::move(fresh), factory, label, primary_bits);
      if (ctx.has_key) {
        rep.setup_cycles = ctx.engine_for(ctx.last_key.bits()).load_key(ctx.last_key.view());
        rep.key_replayed = true;
      }
      rep.pause_us = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                                                t0)
              .count());
      swap_pause_us_hist_.record(rep.pause_us);
      swaps_.fetch_add(1, std::memory_order_relaxed);
      worker_engine_[static_cast<std::size_t>(index)].store(label, std::memory_order_relaxed);
      prom->set_value(std::move(rep));
    } catch (...) {
      prom->set_exception(std::current_exception());
    }
  });
  return future;
}

std::future<bool> Farm::inject_fault(int worker, std::size_t site) {
  auto prom = std::make_shared<std::promise<bool>>();
  auto future = prom->get_future();
  push_control(worker, [prom, site](WorkerContext& ctx, int /*index*/) {
    try {
      prom->set_value(ctx.engine->inject_fault(site));
    } catch (...) {
      prom->set_exception(std::current_exception());
    }
  });
  return future;
}

void Farm::set_worker_enabled(int worker, bool enabled) {
  if (worker < 0 || worker >= cfg_.workers)
    throw std::out_of_range("farm: worker index out of range");
  const bool was = sessions_.worker_enabled(worker);
  sessions_.set_worker_enabled(worker, enabled);
  if (was && !enabled) quarantines_.fetch_add(1, std::memory_order_relaxed);
}

std::shared_ptr<const netlist::Netlist> Farm::shared_netlist() const {
  std::lock_guard lk(netlist_mu_);
  return shared_netlist_;
}

void Farm::record_latency(std::chrono::steady_clock::time_point t_submit) {
  const auto us = std::chrono::duration<float, std::micro>(
                      std::chrono::steady_clock::now() - t_submit)
                      .count();
  std::lock_guard lk(latency_mu_);
  if (latencies_us_.size() < kLatencyCap)
    latencies_us_.push_back(us);
  else
    latencies_us_[latency_count_ % kLatencyCap] = us;  // overwrite-oldest reservoir
  ++latency_count_;
}

FarmStats Farm::stats() const {
  FarmStats s;
  s.workers = cfg_.workers;
  s.engine = engine_name_;
  if (const char* bb = batch_backend_.load(std::memory_order_relaxed)) {
    s.batch_backend = bb;
    s.batch_lanes = batch_lanes_.load(std::memory_order_relaxed);
  }
  s.queue_capacity = cfg_.queue_capacity;
  s.requests = requests_done_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.ctr_fanouts = ctr_fanouts_.load(std::memory_order_relaxed);
  s.ctr_chunks = ctr_chunks_.load(std::memory_order_relaxed);

  const auto sc = sessions_.counters();
  s.key_hits = sc.key_hits;
  s.key_loads = sc.key_loads;
  s.session_evictions = sc.session_evictions;
  s.sessions_live = sc.sessions_live;

  s.swaps = swaps_.load(std::memory_order_relaxed);
  s.heals = heals_.load(std::memory_order_relaxed);
  s.quarantines = quarantines_.load(std::memory_order_relaxed);
  s.spot_checks = spot_checks_.load(std::memory_order_relaxed);
  s.spot_mismatches = spot_mismatches_.load(std::memory_order_relaxed);
  s.replayed_jobs = replayed_jobs_.load(std::memory_order_relaxed);
  s.spot_boosts = spot_boosts_.load(std::memory_order_relaxed);
  s.spot_boost_checks = spot_boost_checks_.load(std::memory_order_relaxed);
  s.workers_boosted = workers_boosted_.load(std::memory_order_relaxed);
  s.sessions_migrated = sc.sessions_migrated;
  s.workers_enabled = sessions_.workers_enabled();
  s.swap_pause_us = swap_pause_us_hist_.snapshot();

  s.queue_depth = queue_depth_hist_.snapshot();
  s.queue_wait_us = queue_wait_us_hist_.snapshot();
  if (tracer_) {
    s.trace_events = tracer_->recorded();
    s.trace_dropped = tracer_->dropped();
  }

  s.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  const double wall_ns = s.wall_seconds * 1e9;

  s.per_worker.reserve(counters_.size());
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    WorkerStats w;
    w.requests = counters_[i].requests.load(std::memory_order_relaxed);
    w.blocks = counters_[i].blocks.load(std::memory_order_relaxed);
    w.cycles = counters_[i].cycles.load(std::memory_order_relaxed);
    w.setup_cycles = counters_[i].setup_cycles.load(std::memory_order_relaxed);
    w.busy_ns = counters_[i].busy_ns.load(std::memory_order_relaxed);
    w.utilization = wall_ns > 0 ? static_cast<double>(w.busy_ns) / wall_ns : 0.0;
    w.engine = worker_engine_[i].load(std::memory_order_relaxed);
    w.enabled = sessions_.worker_enabled(static_cast<int>(i));
    s.blocks += w.blocks;
    s.total_cycles += w.cycles;
    s.total_setup_cycles += w.setup_cycles;
    s.max_worker_cycles = std::max(s.max_worker_cycles, w.cycles);
    s.per_worker.push_back(w);
    s.queue_high_water = std::max(s.queue_high_water, queues_[i]->high_water());
  }

  {
    std::lock_guard lk(latency_mu_);
    s.latency.samples = latency_count_;
    if (!latencies_us_.empty()) {
      std::vector<float> sorted(latencies_us_);
      std::sort(sorted.begin(), sorted.end());
      const auto pct = [&](double p) {
        const auto idx = static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
        return static_cast<double>(sorted[idx]);
      };
      double sum = 0;
      for (const float v : sorted) sum += v;
      s.latency.mean_us = sum / static_cast<double>(sorted.size());
      s.latency.p50_us = pct(0.50);
      s.latency.p90_us = pct(0.90);
      s.latency.p99_us = pct(0.99);
      s.latency.max_us = static_cast<double>(sorted.back());
    }
  }
  return s;
}

bool Farm::write_chrome_trace(std::ostream& os) const {
  if (!tracer_) return false;
  tracer_->write_chrome_trace(os, kTraceNames, "aesip farm");
  return true;
}

// --- FarmStats rendering ----------------------------------------------------------

void FarmStats::merge_from(const FarmStats& other) {
  if (other.batch_lanes > batch_lanes) {
    batch_lanes = other.batch_lanes;
    batch_backend = other.batch_backend;
  }
  workers += other.workers;
  if (engine.empty())
    engine = other.engine;
  else if (!other.engine.empty() && other.engine != engine)
    engine = "mixed";

  requests += other.requests;
  blocks += other.blocks;
  rejected += other.rejected;
  ctr_fanouts += other.ctr_fanouts;
  ctr_chunks += other.ctr_chunks;

  key_hits += other.key_hits;
  key_loads += other.key_loads;
  session_evictions += other.session_evictions;
  sessions_live += other.sessions_live;

  queue_capacity += other.queue_capacity;
  queue_high_water = std::max(queue_high_water, other.queue_high_water);
  queue_depth.merge(other.queue_depth);
  queue_wait_us.merge(other.queue_wait_us);

  swaps += other.swaps;
  heals += other.heals;
  quarantines += other.quarantines;
  spot_checks += other.spot_checks;
  spot_mismatches += other.spot_mismatches;
  replayed_jobs += other.replayed_jobs;
  spot_boosts += other.spot_boosts;
  spot_boost_checks += other.spot_boost_checks;
  workers_boosted += other.workers_boosted;
  sessions_migrated += other.sessions_migrated;
  workers_enabled += other.workers_enabled;
  swap_pause_us.merge(other.swap_pause_us);

  trace_events += other.trace_events;
  trace_dropped += other.trace_dropped;

  // Nodes run concurrently: the cluster's wall time is the longest node's,
  // and the simulated makespan is the slowest core anywhere.
  wall_seconds = std::max(wall_seconds, other.wall_seconds);
  total_cycles += other.total_cycles;
  max_worker_cycles = std::max(max_worker_cycles, other.max_worker_cycles);
  total_setup_cycles += other.total_setup_cycles;

  // Percentile summaries cannot merge exactly; weighted mean + max bounds.
  const auto n1 = latency.samples, n2 = other.latency.samples;
  if (n1 + n2 > 0)
    latency.mean_us = (latency.mean_us * static_cast<double>(n1) +
                       other.latency.mean_us * static_cast<double>(n2)) /
                      static_cast<double>(n1 + n2);
  latency.p50_us = std::max(latency.p50_us, other.latency.p50_us);
  latency.p90_us = std::max(latency.p90_us, other.latency.p90_us);
  latency.p99_us = std::max(latency.p99_us, other.latency.p99_us);
  latency.max_us = std::max(latency.max_us, other.latency.max_us);
  latency.samples = n1 + n2;

  per_worker.insert(per_worker.end(), other.per_worker.begin(), other.per_worker.end());
}

std::string FarmStats::report(double clock_ns) const {
  char line[192];
  std::string out;
  const auto add = [&](const char* fmt, auto... args) {
    std::snprintf(line, sizeof line, fmt, args...);
    out += line;
  };
  add("farm: %d workers (%s engine), queue capacity %zu (high water %zu)\n", workers,
      engine.c_str(), queue_capacity, queue_high_water);
  add("  batch:     %s backend, %zu lanes per engine pass\n", batch_backend.c_str(),
      batch_lanes);
  if (queue_depth.count)
    add("  queues:    depth p50 %llu p99 %llu max %llu; wait p50 %llu us p99 %llu us "
        "max %llu us\n",
        static_cast<unsigned long long>(queue_depth.percentile(0.50)),
        static_cast<unsigned long long>(queue_depth.percentile(0.99)),
        static_cast<unsigned long long>(queue_depth.max),
        static_cast<unsigned long long>(queue_wait_us.percentile(0.50)),
        static_cast<unsigned long long>(queue_wait_us.percentile(0.99)),
        static_cast<unsigned long long>(queue_wait_us.max));
  add("  traffic:   %llu requests, %llu blocks, %llu rejected (backpressure)\n",
      static_cast<unsigned long long>(requests), static_cast<unsigned long long>(blocks),
      static_cast<unsigned long long>(rejected));
  add("  ctr:       %llu fan-outs -> %llu chunks\n",
      static_cast<unsigned long long>(ctr_fanouts), static_cast<unsigned long long>(ctr_chunks));
  add("  affinity:  %llu key hits / %llu loads (%.1f%% hit), %llu live sessions, "
      "%llu evictions\n",
      static_cast<unsigned long long>(key_hits), static_cast<unsigned long long>(key_loads),
      key_hit_rate() * 100.0, static_cast<unsigned long long>(sessions_live),
      static_cast<unsigned long long>(session_evictions));
  if (swaps || heals || quarantines || spot_checks)
    add("  fleet:     %llu swaps, %llu heals, %llu quarantines (%d/%d workers enabled); "
        "spot-check %llu/%llu mismatched, %llu replayed, %llu sessions migrated\n",
        static_cast<unsigned long long>(swaps), static_cast<unsigned long long>(heals),
        static_cast<unsigned long long>(quarantines), workers_enabled, workers,
        static_cast<unsigned long long>(spot_mismatches),
        static_cast<unsigned long long>(spot_checks),
        static_cast<unsigned long long>(replayed_jobs),
        static_cast<unsigned long long>(sessions_migrated));
  if (spot_boosts)
    add("  adaptive:  %llu boost episodes, %llu boosted checks, %d workers boosted now\n",
        static_cast<unsigned long long>(spot_boosts),
        static_cast<unsigned long long>(spot_boost_checks), workers_boosted);
  add("  simulated: %.2f cycles/block (ideal 50), %llu setup cycles, makespan %llu cycles\n",
      cycles_per_block(), static_cast<unsigned long long>(total_setup_cycles),
      static_cast<unsigned long long>(max_worker_cycles));
  add("  hardware:  %.1f Mbps aggregate @ %.0f ns clock (%.0f blocks/s across %d cores)\n",
      sim_mbps(clock_ns), clock_ns, sim_blocks_per_sec(clock_ns), workers);
  add("  host:      %.0f blocks/s wall clock over %.2f s\n", blocks_per_wall_sec(),
      wall_seconds);
  if (latency.samples)
    add("  latency:   p50 %.0f us, p90 %.0f us, p99 %.0f us, max %.0f us (%llu samples)\n",
        latency.p50_us, latency.p90_us, latency.p99_us, latency.max_us,
        static_cast<unsigned long long>(latency.samples));
  if (trace_events)
    add("  trace:     %llu events recorded, %llu overwritten by ring wrap\n",
        static_cast<unsigned long long>(trace_events),
        static_cast<unsigned long long>(trace_dropped));
  for (std::size_t i = 0; i < per_worker.size(); ++i)
    add("  worker %2zu: %8llu blocks, %10llu cycles (%llu setup), %4.1f%% utilized [%s%s]\n", i,
        static_cast<unsigned long long>(per_worker[i].blocks),
        static_cast<unsigned long long>(per_worker[i].cycles),
        static_cast<unsigned long long>(per_worker[i].setup_cycles),
        per_worker[i].utilization * 100.0, per_worker[i].engine.c_str(),
        per_worker[i].enabled ? "" : ", quarantined");
  return out;
}

namespace {
void write_histogram_json(report::JsonWriter& j, const obs::HistogramSnapshot& h) {
  j.begin_object();
  j.key("count").value(h.count);
  j.key("sum").value(h.sum);
  j.key("mean").value(h.mean());
  j.key("max").value(h.max);
  j.key("p50").value(h.percentile(0.50));
  j.key("p90").value(h.percentile(0.90));
  j.key("p99").value(h.percentile(0.99));
  j.key("buckets").begin_array();  // [inclusive upper bound, count] pairs
  for (int b = 0; b < obs::HistogramSnapshot::kBuckets; ++b) {
    const auto n = h.buckets[static_cast<std::size_t>(b)];
    if (!n) continue;
    j.begin_array();
    j.value(obs::HistogramSnapshot::bucket_upper(b));
    j.value(n);
    j.end_array();
  }
  j.end_array();
  j.end_object();
}
}  // namespace

void FarmStats::write_json(std::ostream& os, double clock_ns) const {
  report::JsonWriter j(os);
  j.begin_object();
  j.key("workers").value(workers);
  j.key("engine").value(engine);
  j.key("batch_backend").value(batch_backend);
  j.key("batch_lanes").value(batch_lanes);
  j.key("requests").value(requests);
  j.key("blocks").value(blocks);
  j.key("rejected").value(rejected);
  j.key("ctr_fanouts").value(ctr_fanouts);
  j.key("ctr_chunks").value(ctr_chunks);
  j.key("key_hits").value(key_hits);
  j.key("key_loads").value(key_loads);
  j.key("key_hit_rate").value(key_hit_rate());
  j.key("session_evictions").value(session_evictions);
  j.key("queue_capacity").value(queue_capacity);
  j.key("queue_high_water").value(queue_high_water);
  j.key("queue_depth");
  write_histogram_json(j, queue_depth);
  j.key("queue_wait_us");
  write_histogram_json(j, queue_wait_us);
  j.key("trace_events").value(trace_events);
  j.key("trace_dropped").value(trace_dropped);
  j.key("swaps").value(swaps);
  j.key("heals").value(heals);
  j.key("quarantines").value(quarantines);
  j.key("spot_checks").value(spot_checks);
  j.key("spot_mismatches").value(spot_mismatches);
  j.key("replayed_jobs").value(replayed_jobs);
  j.key("spot_boosts").value(spot_boosts);
  j.key("spot_boost_checks").value(spot_boost_checks);
  j.key("workers_boosted").value(workers_boosted);
  j.key("sessions_migrated").value(sessions_migrated);
  j.key("workers_enabled").value(workers_enabled);
  j.key("swap_pause_us");
  write_histogram_json(j, swap_pause_us);
  j.key("wall_seconds").value(wall_seconds);
  j.key("blocks_per_wall_sec").value(blocks_per_wall_sec());
  j.key("total_cycles").value(total_cycles);
  j.key("total_setup_cycles").value(total_setup_cycles);
  j.key("max_worker_cycles").value(max_worker_cycles);
  j.key("cycles_per_block").value(cycles_per_block());
  j.key("clock_ns").value(clock_ns);
  j.key("sim_blocks_per_sec").value(sim_blocks_per_sec(clock_ns));
  j.key("sim_mbps").value(sim_mbps(clock_ns));
  j.key("latency_us").begin_object();
  j.key("mean").value(latency.mean_us);
  j.key("p50").value(latency.p50_us);
  j.key("p90").value(latency.p90_us);
  j.key("p99").value(latency.p99_us);
  j.key("max").value(latency.max_us);
  j.key("samples").value(latency.samples);
  j.end_object();
  j.key("per_worker").begin_array();
  for (const auto& w : per_worker) {
    j.begin_object();
    j.key("requests").value(w.requests);
    j.key("blocks").value(w.blocks);
    j.key("cycles").value(w.cycles);
    j.key("setup_cycles").value(w.setup_cycles);
    j.key("busy_ns").value(w.busy_ns);
    j.key("utilization").value(w.utilization);
    j.key("engine").value(w.engine);
    j.key("enabled").value(w.enabled);
    j.end_object();
  }
  j.end_array();
  j.end_object();
}

}  // namespace aesip::farm
