// Bounded MPMC queue — the farm's backpressure primitive.
//
// Any number of producers push jobs and any number of consumers pop them;
// capacity is fixed at construction. push() blocks when full (the bounded
// buffer *is* the backpressure: a submitter stalls instead of growing an
// unbounded backlog), try_push() refuses instead of blocking so callers can
// shed load, and close() wakes everything up for shutdown: pending items
// still drain, then pop() returns nullopt.
//
// This deliberately mirrors the paper's Data_In register: a one-deep
// hardware queue whose "full" condition (data_pending) is what throttles
// the bus master. The farm queue is the same contract with depth > 1.
//
// Mutex + condvars, not lock-free: the consumer side of every pop runs a
// 50-cycle-per-block HDL simulation, so queue overhead is noise; what the
// hot path must avoid is sharing *cores* across threads, and the farm
// guarantees that structurally (one simulator per worker), not here.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace aesip::farm {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity ? capacity : 1) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocking push; returns false only if the queue was closed.
  bool push(T item) {
    std::unique_lock lk(mu_);
    not_full_.wait(lk, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    if (items_.size() > high_water_) high_water_ = items_.size();
    lk.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Priority push for rare control items (engine hot-swap, fault
  /// injection): the item goes to the FRONT of the queue and ignores the
  /// capacity bound, so the control plane can never deadlock against its
  /// own backpressure — a full queue means the worker is busy, which is
  /// exactly when a swap or quarantine order must still get through.
  /// Returns false only if the queue was closed.
  bool push_front(T item) {
    {
      std::lock_guard lk(mu_);
      if (closed_) return false;
      items_.push_front(std::move(item));
      if (items_.size() > high_water_) high_water_ = items_.size();
    }
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed (the load-shedding path).
  bool try_push(T item) {
    {
      std::lock_guard lk(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      if (items_.size() > high_water_) high_water_ = items_.size();
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop; nullopt once the queue is closed *and* drained.
  std::optional<T> pop() {
    std::unique_lock lk(mu_);
    not_empty_.wait(lk, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lk.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Blocking pop of up to `max` items in one wake-up — the dispatch-batch
  /// primitive: a worker that fell behind drains a burst in one lock
  /// acquisition and can feed it to a lane-packed engine.  Waits like
  /// pop(), never waits for the queue to *fill*; empty result only once
  /// the queue is closed and drained.
  std::vector<T> pop_batch(std::size_t max) {
    std::vector<T> out;
    std::unique_lock lk(mu_);
    not_empty_.wait(lk, [&] { return !items_.empty() || closed_; });
    while (!items_.empty() && out.size() < (max ? max : 1)) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    lk.unlock();
    not_full_.notify_all();  // may have freed several slots
    return out;
  }

  /// Stop accepting new items; consumers drain what is queued, then see
  /// nullopt. Idempotent.
  void close() {
    {
      std::lock_guard lk(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard lk(mu_);
    return items_.size();
  }

  std::size_t capacity() const noexcept { return capacity_; }

  /// Deepest the queue has ever been — the headroom metric the stats report.
  std::size_t high_water() const {
    std::lock_guard lk(mu_);
    return high_water_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace aesip::farm
