// Farm telemetry: what the service layer measures and how it reports it.
//
// Two time domains coexist and both matter:
//
//  * host wall-clock — how fast this process simulates the farm. Honest
//    about the machine running the model; on a single-CPU host it does NOT
//    scale with workers, because every simulated core shares one real one.
//  * simulated time — each worker's private hdl::Simulator advances its own
//    cycle counter, and the cores would run *concurrently* in hardware, so
//    the farm's simulated makespan is max(worker cycles), not the sum.
//    Aggregate hardware throughput = total blocks / (makespan x Tclk).
//    This is the paper's replication story quantified: N cheap cores ≈ N x
//    the Table 2 single-core throughput, minus re-key overhead.
//
// FarmStats is a plain value snapshot — safe to copy out of a running farm
// and serialize (report()/write_json()) without holding farm locks.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/histogram.hpp"

namespace aesip::farm {

struct WorkerStats {
  std::uint64_t requests = 0;      ///< jobs (incl. fan-out chunks) executed
  std::uint64_t blocks = 0;        ///< 16-byte blocks pushed through the core
  std::uint64_t cycles = 0;        ///< simulated cycles this worker's core ran
  std::uint64_t setup_cycles = 0;  ///< cycles spent re-keying (the affinity miss cost)
  std::uint64_t busy_ns = 0;       ///< host time spent executing jobs
  double utilization = 0;          ///< busy_ns / farm wall time, in [0,1]
  std::string engine;              ///< engine currently installed (may differ after swaps)
  bool enabled = true;             ///< false while quarantined (no new routes)
};

struct LatencyStats {
  double mean_us = 0, p50_us = 0, p90_us = 0, p99_us = 0, max_us = 0;
  std::uint64_t samples = 0;
};

struct FarmStats {
  int workers = 0;
  std::string engine;  ///< CipherEngine kind the workers run ("custom" for factories)
  std::string batch_backend = "none";  ///< lane backend behind process_batch
  std::size_t batch_lanes = 1;         ///< blocks per engine pass on that backend

  // traffic
  std::uint64_t requests = 0;   ///< client requests completed
  std::uint64_t blocks = 0;     ///< blocks processed (ceil for partial CTR tails)
  std::uint64_t rejected = 0;   ///< try_submit refusals (backpressure shed)
  std::uint64_t ctr_fanouts = 0;///< CTR payloads split across workers
  std::uint64_t ctr_chunks = 0; ///< chunks produced by those splits

  // affinity
  std::uint64_t key_hits = 0;
  std::uint64_t key_loads = 0;
  std::uint64_t session_evictions = 0;
  std::uint64_t sessions_live = 0;

  // queues
  std::size_t queue_capacity = 0;
  std::size_t queue_high_water = 0;  ///< max depth over all worker queues
  obs::HistogramSnapshot queue_depth;    ///< depth observed after each enqueue
  obs::HistogramSnapshot queue_wait_us;  ///< submit -> execution start, per job

  // fleet (live reconfiguration: hot-swap / spot-check / quarantine-heal;
  // see docs/fleet.md — all zero on a farm that was never reconfigured)
  std::uint64_t swaps = 0;            ///< live engine hot-swaps completed
  std::uint64_t heals = 0;            ///< engines rebuilt after a detected fault
  std::uint64_t quarantines = 0;      ///< workers pulled from routing (spot-check or admin)
  std::uint64_t spot_checks = 0;      ///< jobs re-run through the software oracle
  std::uint64_t spot_mismatches = 0;  ///< of which the engine's output was wrong
  std::uint64_t replayed_jobs = 0;    ///< jobs answered with the oracle's (correct) bytes
  std::uint64_t spot_boosts = 0;      ///< adaptive boost episodes (mismatch -> boosted rate)
  std::uint64_t spot_boost_checks = 0;///< spot checks sampled at the boosted rate
  int workers_boosted = 0;            ///< gauge: workers currently sampling boosted
  std::uint64_t sessions_migrated = 0;///< sessions re-routed off a quarantined worker
  int workers_enabled = 0;            ///< gauge: workers currently taking routes
  obs::HistogramSnapshot swap_pause_us;  ///< worker pause per swap/heal (engine rebuild + key replay)

  // tracing (zero unless FarmConfig::tracing)
  std::uint64_t trace_events = 0;   ///< events recorded into the rings
  std::uint64_t trace_dropped = 0;  ///< overwritten by ring wrap

  // time
  double wall_seconds = 0;
  std::uint64_t total_cycles = 0;       ///< sum over workers
  std::uint64_t max_worker_cycles = 0;  ///< simulated makespan
  std::uint64_t total_setup_cycles = 0;

  LatencyStats latency;  ///< host-side submit->complete, microseconds
  std::vector<WorkerStats> per_worker;

  // --- derived -------------------------------------------------------------
  double blocks_per_wall_sec() const {
    return wall_seconds > 0 ? static_cast<double>(blocks) / wall_seconds : 0.0;
  }
  /// Simulated cycles per block, farm-wide (ideal: 50 + amortized setup).
  double cycles_per_block() const {
    return blocks ? static_cast<double>(total_cycles) / static_cast<double>(blocks) : 0.0;
  }
  /// Aggregate *hardware* throughput at clock period `clock_ns`: blocks
  /// finished per second of simulated time, all cores counted in parallel.
  double sim_blocks_per_sec(double clock_ns) const {
    const double makespan_s = static_cast<double>(max_worker_cycles) * clock_ns * 1e-9;
    return makespan_s > 0 ? static_cast<double>(blocks) / makespan_s : 0.0;
  }
  double sim_mbps(double clock_ns) const {
    return sim_blocks_per_sec(clock_ns) * 128.0 / 1e6;
  }
  double key_hit_rate() const {
    const auto total = key_hits + key_loads;
    return total ? static_cast<double>(key_hits) / static_cast<double>(total) : 0.0;
  }

  /// Fold another farm's stats into this one — the cluster-wide roll-up
  /// (`aesip fleet status --nodes`). Counters and cycle totals add;
  /// gauges that count resources (workers, sessions_live, queue_capacity)
  /// add; high-water marks and makespan take the max; histograms merge
  /// exactly (log2 buckets align). LatencyStats percentiles cannot merge
  /// exactly from summaries alone: mean is weighted by samples, the p50/
  /// p90/p99/max fields take the max — an upper bound, never an
  /// under-report. per_worker lists concatenate in call order.
  void merge_from(const FarmStats& other);

  /// Human-readable multi-line report (clock_ns scales the simulated-domain
  /// figures; the paper's Acex1K column is 14 ns).
  std::string report(double clock_ns = 14.0) const;

  /// Machine-readable dump for BENCH_*.json trend tracking.
  void write_json(std::ostream& os, double clock_ns = 14.0) const;
};

}  // namespace aesip::farm
