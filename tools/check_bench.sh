#!/bin/sh
# Validate the common aesip-bench-v1 envelope on every BENCH_*.json in the
# repo (see report::begin_bench_envelope and docs/benchmarks.md): each file
# must name the envelope schema, the bench that wrote it, an integer payload
# schema version, a git_rev string, and a config object — and must not
# contain negative counters (every figure the benches emit is a count,
# a rate or a ratio; a minus sign means a counter underflowed).
#
# Usage: check_bench.sh /path/to/repo
set -u

repo=${1:?usage: check_bench.sh /path/to/repo}

found=0
fail=0
for f in "$repo"/BENCH_*.json; do
  [ -e "$f" ] || continue
  found=$((found + 1))
  name=$(basename "$f")

  for needle in \
    '"schema": "aesip-bench-v1"' \
    '"bench": "' \
    '"bench_schema_version": ' \
    '"git_rev": "' \
    '"config": {'
  do
    if ! grep -qF "$needle" "$f"; then
      echo "check_bench: $name: missing $needle" >&2
      fail=1
    fi
  done

  # The bench name inside the file must match BENCH_<name>.json.
  stem=${name#BENCH_}
  stem=${stem%.json}
  if ! grep -qF "\"bench\": \"$stem\"" "$f"; then
    echo "check_bench: $name: \"bench\" key does not say \"$stem\"" >&2
    fail=1
  fi

  # The payload schema version must be a positive integer.
  ver=$(sed -n 's/.*"bench_schema_version": \([0-9][0-9]*\).*/\1/p' "$f" | head -1)
  if [ -z "$ver" ] || [ "$ver" -lt 1 ]; then
    echo "check_bench: $name: bench_schema_version is not a positive integer" >&2
    fail=1
  fi

  # No negative numeric values anywhere (": -" catches them all).
  if grep -q '": -' "$f"; then
    echo "check_bench: $name: negative counter value:" >&2
    grep '": -' "$f" >&2
    fail=1
  fi

  # Bench-specific payload contracts.
  if [ "$stem" = "net" ]; then
    # The wire-tax gate (docs/net.md): the gate section must be present
    # and must pass — loopback >= 70% of direct-farm throughput.
    for needle in \
      '"gate": {' \
      '"direct_blocks_per_sec": ' \
      '"loopback_blocks_per_sec": ' \
      '"ratio": ' \
      '"target_ratio": ' \
      '"sweep": ['
    do
      if ! grep -qF "$needle" "$f"; then
        echo "check_bench: $name: missing $needle" >&2
        fail=1
      fi
    done
    if ! sed -n '/"gate": {/,/}/p' "$f" | grep -qF '"meets_target": true'; then
      echo "check_bench: $name: wire-tax gate failed (meets_target is not true)" >&2
      fail=1
    fi

    # v2 payload (docs/cluster.md): epoll scaling, the nodes x sessions
    # cluster sweep, and the UDP-vs-TCP row.
    for needle in \
      '"epoll": {' \
      '"cluster": [' \
      '"udp_vs_tcp": {'
    do
      if ! grep -qF "$needle" "$f"; then
        echo "check_bench: $name: missing $needle" >&2
        fail=1
      fi
    done
    # Zero-frame-loss and graceful drain at every scale that ran: any
    # non-zero lost_frames or a failed drain anywhere in the file fails.
    if grep -q '"lost_frames": [^0]' "$f"; then
      echo "check_bench: $name: lost frames in a cluster/udp row:" >&2
      grep '"lost_frames": [^0]' "$f" >&2
      fail=1
    fi
    if grep -qF '"drained": false' "$f"; then
      echo "check_bench: $name: a row did not drain gracefully" >&2
      fail=1
    fi
    # The epoll gate: measured and met, or skipped with a reason (hosts
    # with < 4 hardware threads cannot show event-loop scaling).
    esection=$(sed -n '/"epoll": {/,/}/p' "$f")
    if printf '%s' "$esection" | grep -qF '"skipped": true'; then
      if ! printf '%s' "$esection" | grep -qF '"reason": "'; then
        echo "check_bench: $name: epoll scaling skipped without a reason" >&2
        fail=1
      fi
    elif ! printf '%s' "$esection" | grep -qF '"meets_target": true'; then
      echo "check_bench: $name: epoll scaling gate failed (meets_target is not true)" >&2
      fail=1
    fi
    # Every skipped sweep row must carry a reason (count them: rows and
    # sections are one-per-line in the writer's output).
    n_skip=$(grep -cF '"skipped": true' "$f")
    n_reason=$(grep -cF '"reason": "' "$f")
    if [ "$n_reason" -lt "$n_skip" ]; then
      echo "check_bench: $name: $n_skip skipped rows but only $n_reason reasons" >&2
      fail=1
    fi
    # The UDP-vs-TCP row must report both transports.
    for needle in '"tcp_blocks_per_sec": ' '"udp_blocks_per_sec": '; do
      if ! grep -qF "$needle" "$f"; then
        echo "check_bench: $name: missing $needle" >&2
        fail=1
      fi
    done
  fi

  if [ "$stem" = "simspeed" ]; then
    # The batch-evaluation gates (docs/netlist.md), payload v4: the
    # netlist_batch section must name the resolved backend and lane width,
    # carry per-backend rows (skipped rows need a reason), pass the
    # historical >= 20x speedup over the scalar evaluator, and pass the
    # SIMD widening gate — widest native backend >= 4x over the u64
    # baseline — unless the host has no SIMD backend, in which case the
    # simd section must say so explicitly.
    for needle in \
      '"netlist_batch": {' \
      '"backend": "' \
      '"lanes": ' \
      '"speedup_per_block": ' \
      '"simd": {' \
      '"backends": [' \
      '"occupancy_sweep": ['
    do
      if ! grep -qF "$needle" "$f"; then
        echo "check_bench: $name: missing $needle" >&2
        fail=1
      fi
    done
    # The scalar gate: top of the netlist_batch section, before the simd
    # sub-object opens.
    if ! sed -n '/"netlist_batch": {/,/"simd": {/p' "$f" \
        | grep -qF '"meets_target": true'; then
      echo "check_bench: $name: netlist batch gate failed (meets_target is not true)" >&2
      fail=1
    fi
    # The SIMD widening gate: measured and met, or skipped with a reason.
    ssection=$(sed -n '/"simd": {/,/}/p' "$f")
    if printf '%s' "$ssection" | grep -qF '"skipped": true'; then
      if ! printf '%s' "$ssection" | grep -qF '"reason": "'; then
        echo "check_bench: $name: simd gate skipped without a reason" >&2
        fail=1
      fi
    else
      if ! printf '%s' "$ssection" | grep -qF '"speedup_vs_u64": '; then
        echo "check_bench: $name: simd gate missing speedup_vs_u64" >&2
        fail=1
      fi
      if ! printf '%s' "$ssection" | grep -qF '"meets_target": true'; then
        echo "check_bench: $name: SIMD widening gate failed (meets_target is not true)" >&2
        fail=1
      fi
    fi
    # Per-backend rows: a measured row must be bit-exact; a skipped row
    # must carry a reason (counted file-wide like the net bench does).
    if grep -qF '"bit_exact": false' "$f"; then
      echo "check_bench: $name: a backend row is not bit-exact" >&2
      fail=1
    fi
    n_skip=$(grep -cF '"skipped": true' "$f")
    n_reason=$(grep -cF '"reason": "' "$f")
    if [ "$n_reason" -lt "$n_skip" ]; then
      echo "check_bench: $name: $n_skip skipped rows but only $n_reason reasons" >&2
      fail=1
    fi
  fi

  if [ "$stem" = "fleet" ]; then
    # Two gates (docs/fleet.md): the zero-corruption chaos gate is
    # unconditional — SEUs injected under 100% spot-check must never leak
    # a corrupted or lost frame. The spot-check overhead gate (< 5% wall
    # tax at 25% sampling) is wall-clock, so like the farm bench's
    # wall-scaling gate it may be skipped with a reason on hosts with too
    # few hardware threads.
    for needle in \
      '"spot_check_overhead": {' \
      '"swap": {' \
      '"zero_corruption": {' \
      '"corrupted_frames": 0' \
      '"lost_frames": 0'
    do
      if ! grep -qF "$needle" "$f"; then
        echo "check_bench: $name: missing $needle" >&2
        fail=1
      fi
    done
    if ! sed -n '/"zero_corruption": {/,/}/p' "$f" | grep -qF '"meets_target": true'; then
      echo "check_bench: $name: zero-corruption gate failed (meets_target is not true)" >&2
      fail=1
    fi
    section=$(sed -n '/"spot_check_overhead": {/,/}/p' "$f")
    if printf '%s' "$section" | grep -qF '"skipped": true'; then
      if ! printf '%s' "$section" | grep -qF '"reason": "'; then
        echo "check_bench: $name: spot-check overhead skipped without a reason" >&2
        fail=1
      fi
    elif ! printf '%s' "$section" | grep -qF '"meets_target": true'; then
      echo "check_bench: $name: spot-check overhead gate failed (meets_target is not true)" >&2
      fail=1
    fi
  fi

  if [ "$stem" = "pareto" ]; then
    # The variant-family Pareto gate (docs/variants.md, docs/benchmarks.md):
    # at least 5 variant rows, a non-degenerate front (>= 3 non-dominated
    # points), the paper's iterative core at the LC minimum, the best
    # pipelined core >= 2x the paper core's blocks/sec, and every row
    # bit-exact and cycle-conformant to its declared schedule. All of that
    # is folded into the pareto section's meets_target by the bench; the
    # individual invariants are re-checked here so a regression names the
    # axis that moved.
    for needle in \
      '"variants": [' \
      '"pareto": {' \
      '"front": [' \
      '"front_size": ' \
      '"pipelined_speedup_x": '
    do
      if ! grep -qF "$needle" "$f"; then
        echo "check_bench: $name: missing $needle" >&2
        fail=1
      fi
    done
    rows=$(grep -cF '"variant": "' "$f")
    if [ "$rows" -lt 5 ]; then
      echo "check_bench: $name: expected >= 5 variant rows, found $rows" >&2
      fail=1
    fi
    if grep -qF '"bit_exact": false' "$f"; then
      echo "check_bench: $name: a variant row is not bit-exact" >&2
      fail=1
    fi
    if grep -qF '"cycle_conformant": false' "$f"; then
      echo "check_bench: $name: a variant row violates its declared schedule" >&2
      fail=1
    fi
    section=$(sed -n '/"pareto": {/,/}/p' "$f")
    front=$(printf '%s' "$section" | sed -n 's/.*"front_size": \([0-9][0-9]*\).*/\1/p' | head -1)
    if [ -z "$front" ] || [ "$front" -lt 3 ]; then
      echo "check_bench: $name: Pareto front is degenerate (front_size=${front:-missing}, need >= 3)" >&2
      fail=1
    fi
    if ! printf '%s' "$section" | grep -qF '"paper_lc_is_min": true'; then
      echo "check_bench: $name: the paper's iterative core lost the LC minimum" >&2
      fail=1
    fi
    if ! printf '%s' "$section" | grep -qF '"meets_target": true'; then
      echo "check_bench: $name: Pareto gate failed (meets_target is not true)" >&2
      fail=1
    fi

    # The key-size sweep (docs/keysizes.md): the paper's iterative core at
    # AES-128/192/256.  One row per key size, key-setup cycles strictly
    # increasing with key size (the 4*Nr inverse-schedule pass: 40/48/56),
    # and the sweep's own meets_target (which also folds in latency = 5*Nr
    # and per-row bit-exactness/cycle conformance, re-checked globally by
    # the bit_exact/cycle_conformant greps above).
    for needle in \
      '"key_sizes": [' \
      '"key_size_sweep": {'
    do
      if ! grep -qF "$needle" "$f"; then
        echo "check_bench: $name: missing $needle" >&2
        fail=1
      fi
    done
    ksection=$(sed -n '/"key_sizes": \[/,/\]/p' "$f")
    krows=$(printf '%s' "$ksection" | grep -cF '"key_bits": ')
    if [ "$krows" -lt 3 ]; then
      echo "check_bench: $name: expected 3 key-size rows (128/192/256), found $krows" >&2
      fail=1
    fi
    prev=-1
    for v in $(printf '%s' "$ksection" | sed -n 's/.*"key_setup_cycles": \([0-9][0-9]*\).*/\1/p'); do
      if [ "$v" -le "$prev" ]; then
        echo "check_bench: $name: key-setup cycles not monotone in key size ($prev -> $v)" >&2
        fail=1
      fi
      prev=$v
    done
    if ! sed -n '/"key_size_sweep": {/,/}/p' "$f" | grep -qF '"meets_target": true'; then
      echo "check_bench: $name: key-size sweep gate failed (meets_target is not true)" >&2
      fail=1
    fi
  fi

  if [ "$stem" = "farm" ]; then
    # The wall-scaling gate: either measured and met, or explicitly skipped
    # with a reason (hosts with fewer hardware threads than workers cannot
    # show wall-clock scaling; the simulated-domain figures still apply).
    if ! grep -qF '"wall_scaling": {' "$f"; then
      echo "check_bench: $name: missing \"wall_scaling\": {" >&2
      fail=1
    else
      section=$(sed -n '/"wall_scaling": {/,/}/p' "$f")
      if printf '%s' "$section" | grep -qF '"skipped": true'; then
        if ! printf '%s' "$section" | grep -qF '"reason": "'; then
          echo "check_bench: $name: wall_scaling skipped without a reason" >&2
          fail=1
        fi
      elif ! printf '%s' "$section" | grep -qF '"meets_target": true'; then
        echo "check_bench: $name: wall-scaling gate failed (meets_target is not true)" >&2
        fail=1
      fi
    fi
    # v4: every engine-sweep row records the engine's batch geometry.
    for needle in '"batch_backend": "' '"batch_lanes": '; do
      if ! grep -qF "$needle" "$f"; then
        echo "check_bench: $name: missing $needle (engine rows must record batch geometry)" >&2
        fail=1
      fi
    done
  fi
done

# Bench outputs are run artifacts (gitignored): a tree that has not run the
# benches yet has nothing to validate.
if [ "$found" -eq 0 ]; then
  echo "check_bench: no BENCH_*.json files in $repo (run the benches to generate them)"
  exit 0
fi
if [ "$fail" -ne 0 ]; then
  echo "check_bench: FAILED" >&2
  exit 1
fi
echo "check_bench: OK ($found BENCH_*.json files carry the aesip-bench-v1 envelope)"
exit 0
