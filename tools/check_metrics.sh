#!/bin/sh
# Live paper-invariant check, run as a ctest: `aesip metrics` must exit 0
# (it self-checks every invariant against its live counters) and its JSON
# must carry the paper's numbers as exact integers.
#
# Usage: check_metrics.sh /path/to/aesip
set -u

aesip=${1:?usage: check_metrics.sh /path/to/aesip}

out=$("$aesip" metrics --blocks 8 --farm no --json - 2>&1)
status=$?
if [ "$status" -ne 0 ]; then
  echo "check_metrics: aesip metrics exited $status" >&2
  echo "$out" >&2
  exit 1
fi

fail=0
for needle in \
  '"schema": "aesip-metrics-v1"' \
  '"invariants_ok": true' \
  '"cycles_per_round": 5' \
  '"cycles_per_block": 50' \
  '"key_setup_cycles_per_load": 40' \
  '"batch_backend": "none"' \
  '"batch_lanes": 1'
do
  if ! echo "$out" | grep -qF "$needle"; then
    echo "check_metrics: missing $needle" >&2
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "$out" >&2
  echo "check_metrics: FAILED" >&2
  exit 1
fi

# The farm section must carry the fleet counters (hot-swap / spot-check /
# quarantine-heal; docs/fleet.md) — all zero on this unreconfigured run,
# but the keys must exist so dashboards can rely on them.
fout=$("$aesip" metrics --blocks 4 --farm yes --workers 2 --json - 2>&1)
if [ $? -ne 0 ]; then
  echo "check_metrics: aesip metrics --farm yes failed" >&2
  echo "$fout" >&2
  exit 1
fi
for needle in \
  '"fleet": {' \
  '"batch_backend": "' \
  '"batch_lanes": ' \
  '"swaps": 0' \
  '"heals": 0' \
  '"spot_checks": 0' \
  '"spot_boosts": 0' \
  '"workers_boosted": 0' \
  '"workers_enabled": 2'
do
  if ! echo "$fout" | grep -qF "$needle"; then
    echo "check_metrics: missing $needle in the farm fleet section" >&2
    fail=1
  fi
done
if [ "$fail" -ne 0 ]; then
  echo "$fout" >&2
  echo "check_metrics: FAILED" >&2
  exit 1
fi

# A netlist engine forced onto the portable backend must report exactly
# that backend and its 64-lane geometry — the deterministic pin for the
# batch_backend / batch_lanes keys (the unforced value is host-dependent).
uout=$(AESIP_BATCH_BACKEND=u64 "$aesip" metrics --blocks 4 --farm no --engine netlist --json - 2>&1)
if [ $? -ne 0 ]; then
  echo "check_metrics: aesip metrics --engine netlist (u64 backend) failed" >&2
  echo "$uout" >&2
  exit 1
fi
for needle in \
  '"batch_backend": "u64"' \
  '"batch_lanes": 64'
do
  if ! echo "$uout" | grep -qF "$needle"; then
    echo "check_metrics: missing $needle in the forced-u64 netlist run" >&2
    fail=1
  fi
done
if [ "$fail" -ne 0 ]; then
  echo "$uout" >&2
  echo "check_metrics: FAILED" >&2
  exit 1
fi

# The net section (docs/cluster.md): a live multi-threaded server behind
# `--net yes` must report its poller backend, per-event-loop-thread
# counters, and the cluster identity/gossip counters dashboards shard by.
nout=$("$aesip" metrics --blocks 4 --farm no --net yes --net-threads 2 --json - 2>&1)
if [ $? -ne 0 ]; then
  echo "check_metrics: aesip metrics --net yes failed" >&2
  echo "$nout" >&2
  exit 1
fi
for needle in \
  '"net": {' \
  '"threads": 2' \
  '"poller": "' \
  '"node_id": "metrics-n0"' \
  '"cluster_nodes_alive": 1' \
  '"redirects_sent": 0' \
  '"per_thread": [' \
  '"connections_adopted": '
do
  if ! echo "$nout" | grep -qF "$needle"; then
    echo "check_metrics: missing $needle in the net section" >&2
    fail=1
  fi
done
if [ "$fail" -ne 0 ]; then
  echo "$nout" >&2
  echo "check_metrics: FAILED" >&2
  exit 1
fi
echo "check_metrics: OK (5 cycles/round, 50 cycles/block, 40-cycle key setup, batch backend keys, fleet + net counters)"
exit 0
