#!/bin/sh
# Docs integrity check, run as a ctest (label `docs`).
#
#   1. every relative markdown link [text](target) in *.md resolves to a
#      real file (http/https/mailto and pure-anchor links are skipped,
#      #fragments are stripped before the existence check);
#   2. every docs/*.md page is reachable from docs/index.md by following
#      relative links (no orphaned pages);
#   3. every `path`-style backtick reference in docs/*.md and README.md
#      that looks like a repo path (src/..., tests/..., docs/..., etc.)
#      names a file or directory that exists.
#
# Usage: check_docs.sh [repo_root]   (default: the parent of this script)
set -u

root=${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}
cd "$root" || exit 2

fail=0
err() { echo "check_docs: $*" >&2; fail=1; }

md_files=$(find . -path ./build -prune -o -name '*.md' -print | sed 's|^\./||' | sort)

# --- 1. relative links resolve -------------------------------------------
for f in $md_files; do
  dir=$(dirname -- "$f")
  # one link per line: pull every](...)  target out of the file
  grep -o ']([^)]*)' "$f" | sed 's/^](//; s/)$//' | while IFS= read -r target; do
    case $target in
      http://*|https://*|mailto:*|'#'*|'') continue ;;
    esac
    path=${target%%#*}
    [ -z "$path" ] && continue
    if ! [ -e "$dir/$path" ]; then
      echo "BROKEN $f -> $target"
    fi
  done > /tmp/check_docs_links.$$ || true
  if [ -s /tmp/check_docs_links.$$ ]; then
    while IFS= read -r line; do err "$line"; done < /tmp/check_docs_links.$$
  fi
  rm -f /tmp/check_docs_links.$$
done

# --- 2. docs/*.md reachable from docs/index.md ---------------------------
reach="docs/index.md"
frontier="docs/index.md"
while [ -n "$frontier" ]; do
  next=""
  for f in $frontier; do
    dir=$(dirname -- "$f")
    for target in $(grep -o ']([^)]*\.md[^)]*)' "$f" 2>/dev/null \
                    | sed 's/^](//; s/)$//; s/#.*$//'); do
      case $target in http://*|https://*) continue ;; esac
      # normalize dir/target (resolve the ../ the index uses for root files)
      norm=$(printf '%s/%s' "$dir" "$target" | sed 's|/\./|/|g')
      while echo "$norm" | grep -q '[^/][^/]*/\.\./'; do
        norm=$(echo "$norm" | sed 's|[^/][^/]*/\.\./||')
      done
      [ -f "$norm" ] || continue
      case " $reach " in *" $norm "*) ;; *) reach="$reach $norm"; next="$next $norm" ;; esac
    done
  done
  frontier=$next
done
for f in docs/*.md; do
  case " $reach " in
    *" $f "*) ;;
    *) err "ORPHAN $f not reachable from docs/index.md" ;;
  esac
done

# --- 3. backtick repo-path references exist ------------------------------
for f in $(echo "$md_files" | grep -E '^(docs/|README)'); do
  grep -o '`[^` ]*`' "$f" | sed 's/^`//; s/`$//' | sort -u | while IFS= read -r ref; do
    case $ref in
      src/*|tests/*|docs/*|bench/*|examples/*|tools/*) ;;
      *) continue ;;
    esac
    # drop trailing punctuation and member accessors; keep pure paths only
    case $ref in
      *'('*|*'::'*|*'<'*) continue ;;
    esac
    if ! [ -e "$ref" ]; then
      echo "MISSING $f refers to nonexistent $ref"
    fi
  done > /tmp/check_docs_refs.$$ || true
  if [ -s /tmp/check_docs_refs.$$ ]; then
    while IFS= read -r line; do err "$line"; done < /tmp/check_docs_refs.$$
  fi
  rm -f /tmp/check_docs_refs.$$
done

if [ "$fail" -ne 0 ]; then
  echo "check_docs: FAILED" >&2
  exit 1
fi
echo "check_docs: OK ($(echo "$md_files" | wc -l | tr -d ' ') markdown files checked)"
exit 0
