#!/bin/sh
# check_bench.sh must actually *fail* on broken payloads — a checker that
# green-lights everything pins nothing.  Corrupts a copy of the repo's
# BENCH_simspeed.json four ways (gate forced false, a backend row made
# non-bit-exact, a skip stripped of its reason, the simd section deleted)
# and requires a non-zero exit each time.
#
# Usage: check_bench_negative.sh /path/to/repo
set -u

repo=${1:?usage: check_bench_negative.sh /path/to/repo}
checker="$(dirname "$0")/check_bench.sh"
src="$repo/BENCH_simspeed.json"

if [ ! -e "$src" ]; then
  echo "check_bench_negative: no BENCH_simspeed.json in $repo (run bench_simspeed first)"
  exit 0
fi

tmp=$(mktemp -d) || exit 1
trap 'rm -rf "$tmp"' EXIT
fail=0

corrupt() {
  desc=$1
  sed "$2" "$src" > "$tmp/BENCH_simspeed.json"
  if sh "$checker" "$tmp" >/dev/null 2>&1; then
    echo "check_bench_negative: checker PASSED a payload with $desc" >&2
    fail=1
  fi
}

corrupt "every meets_target forced false" 's/"meets_target": true/"meets_target": false/'
corrupt "a non-bit-exact backend row" 's/"bit_exact": true/"bit_exact": false/'
corrupt "a skipped row with its reason stripped" '/"reason": "/d'
corrupt "the simd gate section deleted" '/"simd": {/,/}/d'

if [ "$fail" -ne 0 ]; then
  echo "check_bench_negative: FAILED" >&2
  exit 1
fi
echo "check_bench_negative: OK (check_bench.sh rejects all 4 corrupted payloads)"
exit 0
