// aesip — command-line front end for the library.
//
// Subcommands:
//   encrypt / decrypt   AES-128 file encryption (ECB/CBC/CTR + PKCS#7),
//                       with a choice of engine: the T-table engine, or
//                       any engine::CipherEngine kind — the software
//                       reference (sw), the cycle-accurate behavioral IP
//                       over its bus protocol, or the synthesized gate
//                       netlist.
//   flow                run synthesize -> map -> fit -> timing for a
//                       variant/device and print the implementation report.
//   export              write the synthesized IP as structural Verilog or
//                       BLIF for external tools.
//   seu                 run a fault-injection campaign (optionally on the
//                       TMR-hardened netlist).
//   power               activity-based power report for a variant/device.
//   farm                drive a synthetic many-session workload through the
//                       multi-core IP farm (src/farm/) and print its stats
//                       report; results are verified against the software
//                       reference on a sample of the traffic. --engine
//                       selects what each worker runs (sw|behavioral|netlist).
//   metrics             run an instrumented workload through a chosen
//                       engine and report the observability counters:
//                       per-FSM-phase cycles (the live 4+1 / 50-cycle
//                       invariants), bus-side cycle accounting, simulator
//                       profile, and optionally the farm's histograms — as
//                       a text table and/or JSON (schema:
//                       docs/benchmarks.md). Exits non-zero if a paper
//                       invariant does not hold.
//   selftest            the engine conformance suite (FIPS-197 Appendix
//                       B/C vectors, Monte Carlo chain, cycle invariants)
//                       through all three CipherEngine kinds, plus the
//                       behavioral/netlist cycle-parity check.
//   serve               expose the IP farm over TCP speaking aesip-wire-v1
//                       (src/net/, spec in docs/net.md). SIGINT/SIGTERM
//                       trigger a graceful drain: every accepted frame is
//                       answered before the process exits.
//   loadgen             drive an aesip serve endpoint: N concurrent client
//                       sessions of pipelined random traffic, each response
//                       verified bit-exactly against aes::Aes128 (plus a
//                       FIPS-197 Appendix B probe per session). Non-zero
//                       exit on any mismatch.
//
// Examples:
//   aesip encrypt --key 000102030405060708090a0b0c0d0e0f --mode cbc
//         --iv aabb...ff --engine ip --in msg.txt --out msg.enc
//   aesip flow --variant both --device EP1K100FC484-1
//   aesip export --variant encrypt --format blif --out aes.blif
#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "aes/cipher.hpp"
#include "aes/modes.hpp"
#include "aes/ttable.hpp"
#include "core/bfm.hpp"
#include "engine/batch_modes.hpp"
#include "engine/conformance.hpp"
#include "engine/engine.hpp"
#include "farm/farm.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/transport.hpp"
#include "obs/profiler.hpp"
#include "report/json.hpp"
#include "core/ip_synth.hpp"
#include "core/rijndael_ip.hpp"
#include "core/table2.hpp"
#include "fpga/device.hpp"
#include "fpga/fitter.hpp"
#include "hdl/simulator.hpp"
#include "netlist/writer.hpp"
#include "power/power.hpp"
#include "report/table.hpp"
#include "seu/campaign.hpp"
#include "seu/tmr.hpp"
#include "techmap/techmap.hpp"

using namespace aesip;

namespace {

[[noreturn]] void die(const std::string& msg) {
  std::fprintf(stderr, "aesip: %s\n", msg.c_str());
  std::exit(1);
}

std::vector<std::uint8_t> from_hex(const std::string& hex) {
  if (hex.size() % 2) die("hex string has odd length");
  std::vector<std::uint8_t> out;
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
    const auto byte = std::stoi(hex.substr(i, 2), nullptr, 16);
    out.push_back(static_cast<std::uint8_t>(byte));
  }
  return out;
}

using Args = std::map<std::string, std::string>;

Args parse_args(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) die("expected --option, got '" + key + "'");
    key = key.substr(2);
    // Both `--option value` and `--option=value` spellings are accepted.
    if (const auto eq = key.find('='); eq != std::string::npos) {
      args[key.substr(0, eq)] = key.substr(eq + 1);
      continue;
    }
    // Bare flags (`--chaos`, trailing `--farm`) read as "yes"; anything
    // else is `--option value`.
    if (i + 1 >= argc || std::strncmp(argv[i + 1], "--", 2) == 0) {
      args[key] = "yes";
      continue;
    }
    args[key] = argv[++i];
  }
  return args;
}

std::string arg_or(const Args& a, const std::string& key, const std::string& fallback) {
  const auto it = a.find(key);
  return it == a.end() ? fallback : it->second;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const auto comma = s.find(',', start);
    const auto end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// The transport every networked subcommand shares: TCP by default,
/// aesip-netchan-v1 over UDP with --udp (--mtu caps the datagram size).
std::unique_ptr<net::Transport> transport_of(const Args& args) {
  if (arg_or(args, "udp", "no") == "no") return net::make_tcp_transport();
  net::UdpConfig ucfg;
  ucfg.mtu = std::stoul(arg_or(args, "mtu", "1200"));
  return net::make_udp_transport(ucfg);
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) die("cannot read " + path);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(f),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, std::span<const std::uint8_t> data) {
  std::ofstream f(path, std::ios::binary);
  if (!f) die("cannot write " + path);
  f.write(reinterpret_cast<const char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
}

core::IpMode variant_of(const std::string& name) {
  if (name == "encrypt") return core::IpMode::kEncrypt;
  if (name == "decrypt") return core::IpMode::kDecrypt;
  if (name == "both") return core::IpMode::kBoth;
  die("unknown variant '" + name + "' (encrypt|decrypt|both)");
}

const char* variant_name(core::IpMode m) {
  return m == core::IpMode::kEncrypt ? "encrypt" : m == core::IpMode::kDecrypt ? "decrypt" : "both";
}

/// Parse --keybits. Returns 128/192/256, or 0 for "mix" (only when
/// `allow_mix`); `fallback` supplies the default spelling.
int keybits_of(const Args& args, const char* fallback, bool allow_mix = false) {
  const std::string kb = arg_or(args, "keybits", fallback);
  if (allow_mix && (kb == "mix" || kb == "mixed")) return 0;
  if (kb == "128" || kb == "192" || kb == "256") return std::stoi(kb);
  die(std::string("--keybits must be 128, 192 or 256") + (allow_mix ? " or mix" : ""));
}

/// A deterministic 16/24/32-byte key drawn from `rng`.
farm::KeyBytes random_keybytes(std::mt19937& rng, int bits) {
  std::array<std::uint8_t, 32> raw{};
  for (auto& b : raw) b = static_cast<std::uint8_t>(rng());
  return *farm::KeyBytes::from(
      std::span(raw).first(static_cast<std::size_t>(bits / 8)));
}

// --- crypt -----------------------------------------------------------------------

int cmd_crypt(bool encrypting, const Args& args) {
  const auto key = from_hex(arg_or(args, "key", ""));
  if (key.size() != 16 && key.size() != 24 && key.size() != 32)
    die("--key must be 32, 48 or 64 hex digits (AES-128/192/256)");
  // --keybits is redundant with the key length but catches pasted-key bugs.
  if (args.count("keybits") &&
      keybits_of(args, "") != static_cast<int>(key.size()) * 8)
    die("--keybits disagrees with the --key length");
  const std::string mode = arg_or(args, "mode", "cbc");
  const std::string engine = arg_or(args, "engine", "ttable");
  const std::string in_path = arg_or(args, "in", "");
  const std::string out_path = arg_or(args, "out", "");
  if (in_path.empty() || out_path.empty()) die("--in and --out are required");
  std::vector<std::uint8_t> iv_vec = from_hex(arg_or(args, "iv", std::string(32, '0')));
  if (iv_vec.size() != 16) die("--iv must be 32 hex digits");
  const std::span<const std::uint8_t, 16> iv(iv_vec.data(), 16);
  // 0 = the engine's own lane width (64 on the portable netlist backend,
  // up to 512 on AVX-512 — whatever the runtime dispatch resolved).
  const unsigned long batch = std::stoul(arg_or(args, "batch", "0"));

  const auto input = read_file(in_path);

  auto run = [&](auto&& cipher) -> std::vector<std::uint8_t> {
    if (mode == "ecb") {
      return encrypting ? aes::ecb_encrypt(cipher, aes::pkcs7_pad(input))
                        : aes::pkcs7_unpad(aes::ecb_decrypt(cipher, input));
    }
    if (mode == "cbc") {
      return encrypting ? aes::cbc_encrypt(cipher, iv, aes::pkcs7_pad(input))
                        : aes::pkcs7_unpad(aes::cbc_decrypt(cipher, iv, input));
    }
    if (mode == "ctr") return aes::ctr_crypt(cipher, iv, input);
    die("unknown mode '" + mode + "' (ecb|cbc|ctr)");
  };

  // The block-parallel legs of each mode route through the engine's batch
  // path in --batch-capped passes (full gate-level lane width on the
  // netlist engine by default); CBC encryption is a chain and stays
  // block-at-a-time.
  auto run_batched = [&](engine::CipherEngine& e) -> std::vector<std::uint8_t> {
    if (mode == "ecb") {
      return encrypting
                 ? engine::ecb_crypt_batched(e, aes::pkcs7_pad(input), true, batch)
                 : aes::pkcs7_unpad(engine::ecb_crypt_batched(e, input, false, batch));
    }
    if (mode == "cbc") {
      return encrypting
                 ? aes::cbc_encrypt(engine::EngineBlockCipher(e), iv, aes::pkcs7_pad(input))
                 : aes::pkcs7_unpad(engine::cbc_decrypt_batched(e, iv, input, batch));
    }
    if (mode == "ctr") return engine::ctr_crypt_batched(e, iv, input, batch);
    die("unknown mode '" + mode + "' (ecb|cbc|ctr)");
  };

  // Engine setup: "ttable" is the optimized software special case; every
  // other spelling resolves to an engine::CipherEngine kind.
  std::vector<std::uint8_t> output;
  std::string detail;
  if (engine == "ttable") {
    aes::TTableAes128 fast(key);
    output = run(fast);
  } else if (const auto kind = engine::kind_from_name(engine)) {
    arch::VariantSpec spec;  // the paper's iterative core at this key size
    spec.key_bits = static_cast<int>(key.size()) * 8;
    const auto e = engine::make_engine(*kind, spec);
    e->load_key(key);
    output = run_batched(*e);
    if (e->cycles()) detail += ", " + std::to_string(e->cycles()) + " simulated cycles";
    const auto& bs = e->batch_stats();
    if (bs.passes) {
      char occ[64];
      std::snprintf(occ, sizeof occ, ", lane occupancy %.1f/%zu (%s backend)",
                    bs.mean_lanes(), e->batch_lanes(), e->batch_backend());
      detail += occ;
    }
  } else {
    die("unknown engine '" + engine + "' (ttable|sw|behavioral|netlist)");
  }

  write_file(out_path, output);
  std::printf("%s %zu bytes -> %zu bytes (%s, %s engine%s)\n",
              encrypting ? "encrypted" : "decrypted", input.size(), output.size(),
              mode.c_str(), engine.c_str(), detail.c_str());
  return 0;
}

// --- flow ------------------------------------------------------------------------

int cmd_flow(const Args& args) {
  const auto mode = variant_of(arg_or(args, "variant", "encrypt"));
  const std::string device_name = arg_or(args, "device", "EP1K100FC484-1");
  const fpga::Device* device = fpga::find_device(device_name);
  if (!device) die("unknown device '" + device_name + "'");
  const auto row = core::reproduce_table2_cell(mode, *device);
  std::printf("variant:        %s\ndevice:         %s\n", variant_name(mode),
              device->name.c_str());
  std::printf("logic cells:    %zu (%.1f%%)   [paper: %d / %d%%]\n", row.fit.logic_elements,
              row.fit.le_pct, row.paper.lcs, row.paper.lc_pct);
  std::printf("memory bits:    %zu (%.1f%%)   [paper: %d / %d%%]\n", row.fit.memory_bits,
              row.fit.memory_pct, row.paper.memory_bits, row.paper.memory_pct);
  std::printf("pins:           %d (%.1f%%)    [paper: %d]\n", row.fit.pins, row.fit.pin_pct,
              row.paper.pins);
  std::printf("clock period:   %.2f ns       [paper: %.0f ns]\n",
              row.fit.timing.clock_period_ns, row.paper.clock_ns);
  std::printf("latency:        %.0f ns (50 cycles)  [paper: %.0f ns]\n", row.latency_ns,
              row.paper.latency_ns);
  std::printf("throughput:     %.1f Mbps     [paper: %.0f Mbps]\n", row.throughput_mbps,
              row.paper.throughput_mbps);
  std::printf("fits:           %s\n", row.fit.fits ? "yes" : "NO");
  return 0;
}

// --- export -----------------------------------------------------------------------

int cmd_export(const Args& args) {
  const auto mode = variant_of(arg_or(args, "variant", "encrypt"));
  const std::string format = arg_or(args, "format", "verilog");
  const std::string out_path = arg_or(args, "out", "");
  const bool rom = arg_or(args, "sbox", "rom") == "rom";
  const bool mapped = arg_or(args, "mapped", "no") == "yes";
  if (out_path.empty()) die("--out is required");

  netlist::Netlist nl = core::synthesize_ip(mode, rom);
  if (mapped) nl = techmap::map_to_luts(nl).mapped;

  std::ofstream f(out_path);
  if (!f) die("cannot write " + out_path);
  const std::string name = std::string("aes_ip_") + variant_name(mode);
  if (format == "verilog") netlist::write_verilog(nl, f, name);
  else if (format == "blif") netlist::write_blif(nl, f, name);
  else die("unknown format '" + format + "' (verilog|blif)");
  const auto st = nl.stats();
  std::printf("wrote %s: %s %s, %zu gates, %zu LUTs, %zu FFs, %zu ROMs\n", out_path.c_str(),
              mapped ? "mapped" : "unmapped", format.c_str(), st.gates, st.luts, st.dffs,
              st.roms);
  return 0;
}

// --- seu --------------------------------------------------------------------------

int cmd_seu(const Args& args) {
  const int runs = std::stoi(arg_or(args, "runs", "100"));
  const std::uint32_t seed = static_cast<std::uint32_t>(std::stoul(arg_or(args, "seed", "1")));
  const bool tmr = arg_or(args, "tmr", "no") == "yes";
  auto mapped = techmap::map_to_luts(core::synthesize_ip(core::IpMode::kEncrypt, true)).mapped;
  if (tmr) mapped = seu::harden_tmr(mapped).hardened;
  const auto stats = seu::run_campaign(mapped, runs, seed);
  std::printf("%d injections into the %s encrypt IP:\n", runs, tmr ? "TMR-hardened" : "unprotected");
  std::printf("  masked:     %zu\n  corrupted:  %zu\n  latent:     %zu\n"
              "  persistent: %zu\n  hang:       %zu\n",
              stats.masked, stats.corrupted, stats.latent, stats.persistent, stats.hang);
  return 0;
}

// --- power ------------------------------------------------------------------------

int cmd_power(const Args& args) {
  const auto mode = variant_of(arg_or(args, "variant", "encrypt"));
  if (mode == core::IpMode::kDecrypt) die("power profiling drives an encrypt workload");
  const std::string device_name = arg_or(args, "device", "EP1K100FC484-1");
  const fpga::Device* device = fpga::find_device(device_name);
  if (!device) die("unknown device '" + device_name + "'");
  const auto row = core::reproduce_table2_cell(mode, *device);
  const auto mapped = techmap::map_to_luts(core::synthesize_ip(mode, device->supports_async_rom));
  const double mhz = 1000.0 / row.fit.timing.clock_period_ns;
  const auto p = power::profile_ip(mapped.mapped, power::params_for(*device), mhz);
  std::printf("variant %s on %s at %.1f MHz:\n", variant_name(mode), device->name.c_str(), mhz);
  std::printf("  logic    %6.2f mW\n  routing  %6.2f mW\n  clock    %6.2f mW\n"
              "  memory   %6.2f mW\n  I/O      %6.2f mW\n  static   %6.2f mW\n"
              "  total    %6.2f mW\n",
              p.logic_mw, p.routing_mw, p.clock_mw, p.memory_mw, p.io_mw, p.static_mw,
              p.total_mw);
  std::printf("  energy: %.2f nJ/block, %.1f pJ/bit\n", p.energy_per_block_nj,
              p.energy_per_bit_pj);
  return 0;
}

// --- farm -------------------------------------------------------------------------

int cmd_farm(const Args& args) {
  farm::FarmConfig cfg;
  cfg.workers = std::stoi(arg_or(args, "workers", "4"));
  cfg.max_sessions = std::stoul(arg_or(args, "sessions", "64"));
  cfg.queue_capacity = std::stoul(arg_or(args, "queue", "64"));
  const std::uint64_t target_blocks = std::stoull(arg_or(args, "blocks", "20000"));
  const std::uint32_t seed =
      static_cast<std::uint32_t>(std::stoul(arg_or(args, "seed", "1")));
  const std::string json_path = arg_or(args, "json", "");
  const std::string trace_path = arg_or(args, "trace", "");
  const int n_keys = std::stoi(arg_or(args, "keys", "32"));  // distinct user keys
  if (!trace_path.empty()) cfg.tracing = true;
  const std::string engine_name = arg_or(args, "engine", "behavioral");
  if (const auto kind = engine::kind_from_name(engine_name)) cfg.engine = *kind;
  else die("unknown engine '" + engine_name + "' (sw|behavioral|netlist)");
  cfg.spot_check_fraction = std::stod(arg_or(args, "spot-check", "0"));
  if (cfg.spot_check_fraction < 0 || cfg.spot_check_fraction > 1)
    die("--spot-check must be in [0,1]");
  const int keybits = keybits_of(args, "128", /*allow_mix=*/true);

  farm::Farm f(cfg);
  std::mt19937 rng(seed);
  std::vector<farm::KeyBytes> keys;
  for (int k = 0; k < n_keys; ++k) {
    const int bits = keybits ? keybits : 128 + 64 * (k % 3);  // mix: round-robin
    keys.push_back(random_keybytes(rng, bits));
  }

  std::printf("farm: %d workers (%s engine), %zu queue slots each, %d session keys "
              "(%s-bit), target %llu blocks\n",
              cfg.workers, engine::kind_name(cfg.engine), cfg.queue_capacity, n_keys,
              keybits ? std::to_string(keybits).c_str() : "mixed 128/192/256",
              static_cast<unsigned long long>(target_blocks));

  // Outstanding futures are bounded so a huge --blocks run doesn't hold
  // every result in memory; sampled requests are checked bit-exactly.
  struct Pending {
    std::future<farm::Result> future;
    std::vector<std::uint8_t> expect;  // empty = unsampled
  };
  std::deque<Pending> pending;
  std::uint64_t submitted_blocks = 0, requests = 0, verified = 0, mismatches = 0;

  const auto drain_one = [&] {
    auto p = std::move(pending.front());
    pending.pop_front();
    const auto res = p.future.get();
    if (!p.expect.empty()) {
      ++verified;
      if (res.data != p.expect) ++mismatches;
    }
  };

  while (submitted_blocks < target_blocks) {
    farm::Request req;
    // Popularity skew: min of two uniform picks favours low session ids,
    // so hot sessions re-hit their key slots while the tail churns them.
    const auto pick = std::min(rng() % keys.size(), rng() % keys.size());
    req.session_id = pick;
    req.key = keys[pick];
    for (auto& b : req.iv) b = static_cast<std::uint8_t>(rng());
    req.mode = static_cast<farm::Mode>(rng() % 3);
    req.encrypt = (rng() & 1) != 0;
    // Mostly short requests; every 16th is a long CTR stream that fans out.
    std::size_t blocks = 1 + rng() % 8;
    if (requests % 16 == 0) {
      req.mode = farm::Mode::kCtr;
      blocks = 128;
    }
    std::size_t bytes = blocks * 16;
    if (req.mode == farm::Mode::kCtr) bytes -= rng() % 16;  // ragged tails
    req.payload.resize(bytes);
    for (auto& b : req.payload) b = static_cast<std::uint8_t>(rng());

    Pending p;
    if (requests % 64 == 0) {  // sample for bit-exact verification
      const aes::Rijndael ref = aes::Rijndael::for_key(req.key.view());
      const std::span<const std::uint8_t, 16> iv(req.iv.data(), 16);
      switch (req.mode) {
        case farm::Mode::kEcb:
          p.expect = req.encrypt ? aes::ecb_encrypt(ref, req.payload)
                                 : aes::ecb_decrypt(ref, req.payload);
          break;
        case farm::Mode::kCbc:
          p.expect = req.encrypt ? aes::cbc_encrypt(ref, iv, req.payload)
                                 : aes::cbc_decrypt(ref, iv, req.payload);
          break;
        case farm::Mode::kCtr:
          p.expect = aes::ctr_crypt(ref, iv, req.payload);
          break;
      }
    }
    submitted_blocks += (bytes + 15) / 16;
    ++requests;
    p.future = f.submit(std::move(req));
    pending.push_back(std::move(p));
    while (pending.size() > 512) drain_one();
  }
  while (!pending.empty()) drain_one();

  const auto st = f.stats();
  std::fputs(st.report(cfg.clock_ns).c_str(), stdout);
  std::printf("verified %llu sampled requests against aes::Rijndael: %s\n",
              static_cast<unsigned long long>(verified),
              mismatches ? "MISMATCH" : "all bit-exact");
  if (!json_path.empty()) {
    std::ofstream jf(json_path);
    if (!jf) die("cannot write " + json_path);
    st.write_json(jf, cfg.clock_ns);
    std::printf("stats written to %s\n", json_path.c_str());
  }
  if (!trace_path.empty()) {
    std::ofstream tf(trace_path);
    if (!tf) die("cannot write " + trace_path);
    f.write_chrome_trace(tf);
    std::printf("chrome trace written to %s (load at chrome://tracing)\n",
                trace_path.c_str());
  }
  return mismatches ? 1 : 0;
}

// --- metrics -----------------------------------------------------------------------

// Shared by the farm summary in cmd_metrics: percentile figures straight
// off a histogram snapshot.
void json_histogram_summary(report::JsonWriter& j, const obs::HistogramSnapshot& h) {
  j.begin_object();
  j.key("count").value(h.count);
  j.key("mean").value(h.mean());
  j.key("p50").value(h.percentile(0.50));
  j.key("p90").value(h.percentile(0.90));
  j.key("p99").value(h.percentile(0.99));
  j.key("max").value(h.max);
  j.end_object();
}

int cmd_metrics(const Args& args) {
  const std::uint64_t n_blocks = std::stoull(arg_or(args, "blocks", "32"));
  if (n_blocks == 0) die("--blocks must be >= 1");
  const std::string json_path = arg_or(args, "json", "");
  const std::string trace_path = arg_or(args, "trace", "");
  const bool with_farm = arg_or(args, "farm", "yes") == "yes";
  const bool json_to_stdout = json_path == "-";
  const bool text = !json_to_stdout;

  // --- instrumented single-core workload: n_blocks encrypted, the same
  // n_blocks decrypted back, through a kBoth device of the chosen engine
  // kind, with the simulator profiler attached (when the engine carries a
  // simulator) and the IP counters running.
  const std::string engine_name = arg_or(args, "engine", "behavioral");
  const auto kind = engine::kind_from_name(engine_name);
  if (!kind) die("unknown engine '" + engine_name + "' (sw|behavioral|netlist)");
  const auto eng = engine::make_engine(*kind);
  const bool timed = *kind != engine::EngineKind::kSoftware;
  std::optional<obs::ScopedProfiler> prof;
  if (auto* sim = eng->simulator()) prof.emplace(*sim);

  std::mt19937 rng(0xae5);
  std::vector<std::uint8_t> key(16);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng());
  eng->load_key(key);

  std::array<std::uint8_t, 16> block{};
  for (std::uint64_t i = 0; i < n_blocks; ++i) {
    for (auto& b : block) b = static_cast<std::uint8_t>(rng());
    const auto ct = eng->process_block(block, true);
    const auto pt = eng->process_block(ct, false);
    if (!std::equal(pt.begin(), pt.end(), block.begin()))
      die("metrics: engine round-trip mismatch");
  }

  const char* batch_backend = eng->batch_backend();
  const std::size_t batch_lanes = eng->batch_lanes();

  const core::IpCounters ipc = eng->counters();
  // Bus-master-side accounting exists only where there is a bus.
  const auto* behavioral = dynamic_cast<const engine::BehavioralEngine*>(eng.get());
  const core::BusCounters bc = behavioral ? behavioral->bus_counters() : core::BusCounters{};

  // --- the paper's cycle budget, checked live off the counters ---------------
  bool ok = true;
  const auto check = [&ok](bool cond, const char* what) {
    if (!cond) {
      ok = false;
      std::fprintf(stderr, "metrics: INVARIANT VIOLATED: %s\n", what);
    }
  };
  check(ipc.blocks_enc == n_blocks && ipc.blocks_dec == n_blocks,
        "block counters match the workload");
  check(ipc.rounds_done == ipc.blocks() * core::RijndaelIp::kRounds,
        "10 rounds per block");
  if (timed) {
    check(ipc.bytesub_cycles == 4 * ipc.rounds_done, "4 ByteSub32 cycles per round");
    check(ipc.mix_cycles == ipc.rounds_done, "1 SR/MC/AK cycle per round");
    check(ipc.round_cycles() ==
              ipc.rounds_done * core::RijndaelIp::kCyclesPerRound,
          "5 cycles per round");
    check(ipc.round_cycles() == ipc.blocks() * core::RijndaelIp::kCyclesPerBlock,
          "50 cycles per block");
    check(ipc.key_setup_cycles ==
              ipc.key_writes * core::RijndaelIp::kKeySetupCycles,
          "40-cycle decrypt key setup per key load");
    check(eng->last_latency() == core::RijndaelIp::kCyclesPerBlock,
          "last block latency == 50");
  } else {
    check(eng->cycles() == 0, "zero-cycle engine reports zero cycles");
  }
  const std::uint64_t cpr = ipc.rounds_done ? ipc.round_cycles() / ipc.rounds_done : 0;
  const std::uint64_t cpb = ipc.blocks() ? ipc.round_cycles() / ipc.blocks() : 0;

  if (text) {
    std::printf("workload: %llu blocks encrypted + %llu decrypted "
                "(kBoth device, %s engine)\n\n",
                static_cast<unsigned long long>(n_blocks),
                static_cast<unsigned long long>(n_blocks), eng->name());
    std::printf("ip phase cycles (Rijndael process):\n");
    std::printf("  idle         %10llu\n",
                static_cast<unsigned long long>(ipc.idle_cycles));
    std::printf("  key setup    %10llu   (%llu loads x 40)\n",
                static_cast<unsigned long long>(ipc.key_setup_cycles),
                static_cast<unsigned long long>(ipc.key_writes));
    std::printf("  bytesub32    %10llu   (4 per round)\n",
                static_cast<unsigned long long>(ipc.bytesub_cycles));
    std::printf("  sr/mc/ak     %10llu   (1 per round)\n",
                static_cast<unsigned long long>(ipc.mix_cycles));
    std::printf("  rounds done  %10llu   -> %llu cycles/round   [paper: 5]\n",
                static_cast<unsigned long long>(ipc.rounds_done),
                static_cast<unsigned long long>(cpr));
    std::printf("  blocks       %10llu   -> %llu cycles/block  [paper: 50]\n\n",
                static_cast<unsigned long long>(ipc.blocks()),
                static_cast<unsigned long long>(cpb));
    if (behavioral) {
      std::printf("bus driver:\n");
      std::printf("  resets %llu, key loads %llu (setup %llu cy), rekey hits %llu\n",
                  static_cast<unsigned long long>(bc.resets),
                  static_cast<unsigned long long>(bc.key_loads),
                  static_cast<unsigned long long>(bc.key_setup_cycles),
                  static_cast<unsigned long long>(bc.rekey_hits));
      std::printf("  blocks %llu: %llu load edges + %llu compute cycles\n\n",
                  static_cast<unsigned long long>(bc.blocks),
                  static_cast<unsigned long long>(bc.load_cycles),
                  static_cast<unsigned long long>(bc.compute_cycles));
    }
    if (prof) std::fputs(prof->report().c_str(), stdout);
  }

  // --- optional farm section: a small traced workload ------------------------
  std::optional<farm::FarmStats> fst;
  farm::FarmConfig fcfg;
  if (with_farm) {
    fcfg.workers = std::stoi(arg_or(args, "workers", "4"));
    fcfg.tracing = true;
    farm::Farm f(fcfg);
    std::vector<std::future<farm::Result>> futs;
    std::vector<farm::Key128> keys(8);
    for (auto& k : keys)
      for (auto& b : k) b = static_cast<std::uint8_t>(rng());
    // Sessions arrive in bursts (32 consecutive requests each) so the
    // affinity router has hits to find.
    for (int i = 0; i < 256; ++i) {
      farm::Request req;
      req.session_id = static_cast<std::uint64_t>(i) / 32 % keys.size();
      req.key = keys[req.session_id];
      for (auto& b : req.iv) b = static_cast<std::uint8_t>(rng());
      req.mode = static_cast<farm::Mode>(i % 3);
      req.encrypt = (i & 1) != 0;
      req.payload.resize(16 * (1 + i % 4));
      for (auto& b : req.payload) b = static_cast<std::uint8_t>(rng());
      futs.push_back(f.submit(std::move(req)));
    }
    for (auto& fu : futs) fu.get();
    fst = f.stats();
    if (text) {
      std::printf("\nfarm (%d workers, tracing on, 256 requests):\n", fcfg.workers);
      std::printf("  batch: %s backend, %zu lanes per engine pass\n",
                  fst->batch_backend.c_str(), fst->batch_lanes);
      std::printf("  queue wait us: p50 %llu  p99 %llu  max %llu\n",
                  static_cast<unsigned long long>(fst->queue_wait_us.percentile(0.50)),
                  static_cast<unsigned long long>(fst->queue_wait_us.percentile(0.99)),
                  static_cast<unsigned long long>(fst->queue_wait_us.max));
      std::printf("  key hit rate: %.1f%%   trace events: %llu (%llu dropped)\n",
                  100.0 * fst->key_hit_rate(),
                  static_cast<unsigned long long>(fst->trace_events),
                  static_cast<unsigned long long>(fst->trace_dropped));
      for (std::size_t w = 0; w < fst->per_worker.size(); ++w)
        std::printf("  worker %zu: %llu requests, %.1f%% utilized\n", w,
                    static_cast<unsigned long long>(fst->per_worker[w].requests),
                    100.0 * fst->per_worker[w].utilization);
    }
    if (!trace_path.empty()) {
      std::ofstream tf(trace_path);
      if (!tf) die("cannot write " + trace_path);
      f.write_chrome_trace(tf);
      if (text) std::printf("  chrome trace written to %s\n", trace_path.c_str());
    }
  } else if (!trace_path.empty()) {
    die("--trace requires --farm yes");
  }

  // --- optional net section: a clustered multi-threaded server probed in
  // process, so the per-thread and cluster counters land in the JSON -----------
  std::optional<net::ServerStats> nst;
  if (arg_or(args, "net", "no") == "yes") {
    const int net_threads = std::stoi(arg_or(args, "net-threads", "2"));
    if (net_threads < 1) die("--net-threads must be >= 1");
    auto nt = net::make_tcp_transport();
    net::ServerConfig scfg;
    scfg.farm.workers = 2;
    scfg.farm.engine = engine::EngineKind::kSoftware;
    scfg.threads = net_threads;
    net::ClusterConfig cc;  // one-node cluster: counters live, nothing redirects
    cc.node_id = "metrics-n0";
    scfg.cluster = cc;
    net::Server srv(*nt, "127.0.0.1:0", scfg);
    srv.start();
    for (int s = 0; s < 3; ++s) {
      net::Client c(*nt, srv.address(), static_cast<std::uint64_t>(s) + 1);
      farm::Key128 key, iv{};
      for (auto& b : key) b = static_cast<std::uint8_t>(rng());
      c.set_key(key);
      for (int r = 0; r < 8; ++r)
        c.enc_blocks(/*cbc=*/false, iv, std::vector<std::uint8_t>(32, static_cast<std::uint8_t>(r)));
      c.drain();
      c.bye();
    }
    srv.stop();
    nst = srv.stats();
    if (text) {
      std::printf("\nnet (%d event-loop threads, %s readiness, node %s):\n", net_threads,
                  nst->poller.c_str(), nst->node_id.c_str());
      for (const auto& t : nst->per_thread)
        std::printf("  thread %d: %llu conns adopted, %llu frames, %llu responses\n", t.thread,
                    static_cast<unsigned long long>(t.connections_adopted),
                    static_cast<unsigned long long>(t.frames_received),
                    static_cast<unsigned long long>(t.responses_sent));
    }
  }

  // --- JSON (schema: docs/benchmarks.md) -------------------------------------
  if (!json_path.empty()) {
    std::ofstream jfile;
    if (!json_to_stdout) {
      jfile.open(json_path);
      if (!jfile) die("cannot write " + json_path);
    }
    std::ostream& os = json_to_stdout ? std::cout : jfile;
    report::JsonWriter j(os);
    j.begin_object();
    j.key("schema").value("aesip-metrics-v1");
    j.key("engine").value(eng->name());
    j.key("batch_backend").value(batch_backend);
    j.key("batch_lanes").value(batch_lanes);
    j.key("blocks_per_direction").value(n_blocks);
    j.key("invariants_ok").value(ok);

    j.key("ip").begin_object();
    j.key("phase_cycles").begin_object();
    j.key("idle").value(ipc.idle_cycles);
    j.key("key_setup").value(ipc.key_setup_cycles);
    j.key("bytesub").value(ipc.bytesub_cycles);
    j.key("mix").value(ipc.mix_cycles);
    j.end_object();
    j.key("setup_resets").value(ipc.setup_resets);
    j.key("key_writes").value(ipc.key_writes);
    j.key("data_writes").value(ipc.data_writes);
    j.key("rounds_done").value(ipc.rounds_done);
    j.key("blocks_enc").value(ipc.blocks_enc);
    j.key("blocks_dec").value(ipc.blocks_dec);
    j.key("cycles_per_round").value(cpr);
    j.key("cycles_per_block").value(cpb);
    j.key("key_setup_cycles_per_load")
        .value(ipc.key_writes ? ipc.key_setup_cycles / ipc.key_writes : 0);
    j.end_object();

    if (behavioral) {
      j.key("bus").begin_object();
      j.key("resets").value(bc.resets);
      j.key("key_loads").value(bc.key_loads);
      j.key("key_setup_cycles").value(bc.key_setup_cycles);
      j.key("rekey_hits").value(bc.rekey_hits);
      j.key("blocks").value(bc.blocks);
      j.key("load_cycles").value(bc.load_cycles);
      j.key("compute_cycles").value(bc.compute_cycles);
      j.end_object();
    }

    if (prof) {
      j.key("simulator").begin_object();
      prof->write_json_fields(j);
      j.end_object();
    }

    if (fst) {
      j.key("farm").begin_object();
      j.key("workers").value(fst->workers);
      j.key("batch_backend").value(fst->batch_backend);
      j.key("batch_lanes").value(fst->batch_lanes);
      j.key("requests").value(fst->requests);
      j.key("blocks").value(fst->blocks);
      j.key("key_hit_rate").value(fst->key_hit_rate());
      j.key("queue_depth");
      json_histogram_summary(j, fst->queue_depth);
      j.key("queue_wait_us");
      json_histogram_summary(j, fst->queue_wait_us);
      j.key("trace_events").value(fst->trace_events);
      j.key("trace_dropped").value(fst->trace_dropped);
      j.key("fleet").begin_object();
      j.key("swaps").value(fst->swaps);
      j.key("heals").value(fst->heals);
      j.key("quarantines").value(fst->quarantines);
      j.key("spot_checks").value(fst->spot_checks);
      j.key("spot_mismatches").value(fst->spot_mismatches);
      j.key("spot_boosts").value(fst->spot_boosts);
      j.key("spot_boost_checks").value(fst->spot_boost_checks);
      j.key("workers_boosted").value(fst->workers_boosted);
      j.key("replayed_jobs").value(fst->replayed_jobs);
      j.key("sessions_migrated").value(fst->sessions_migrated);
      j.key("workers_enabled").value(fst->workers_enabled);
      j.end_object();
      j.key("utilization").begin_array();
      for (const auto& w : fst->per_worker) j.value(w.utilization);
      j.end_array();
      j.end_object();
    }

    if (nst) {
      j.key("net").begin_object();
      j.key("threads").value(static_cast<std::uint64_t>(nst->per_thread.size()));
      j.key("poller").value(nst->poller);
      j.key("node_id").value(nst->node_id);
      j.key("cluster_nodes_alive").value(nst->cluster_nodes_alive);
      j.key("connections_accepted").value(nst->connections_accepted);
      j.key("frames_received").value(nst->frames_received);
      j.key("responses_sent").value(nst->responses_sent);
      j.key("redirects_sent").value(nst->redirects_sent);
      j.key("gossip_frames").value(nst->gossip_frames);
      j.key("gossip_rounds").value(nst->gossip_rounds);
      j.key("per_thread").begin_array();
      for (const auto& t : nst->per_thread) {
        j.begin_object();
        j.key("thread").value(t.thread);
        j.key("connections_adopted").value(t.connections_adopted);
        j.key("frames_received").value(t.frames_received);
        j.key("responses_sent").value(t.responses_sent);
        j.key("bytes_in").value(t.bytes_in);
        j.key("bytes_out").value(t.bytes_out);
        j.end_object();
      }
      j.end_array();
      j.end_object();
    }
    j.end_object();
    if (text && !json_to_stdout)
      std::printf("\nmetrics written to %s\n", json_path.c_str());
  }
  return ok ? 0 : 1;
}

// --- serve -------------------------------------------------------------------------

// SIGINT/SIGTERM land here; request_drain() is one atomic store, so it is
// async-signal-safe. The loop then finishes every in-flight frame and exits.
std::atomic<net::Server*> g_serve_instance{nullptr};

void serve_signal_handler(int) {
  if (auto* s = g_serve_instance.load(std::memory_order_acquire)) s->request_drain();
}

int cmd_serve(const Args& args) {
  net::ServerConfig cfg;
  cfg.farm.workers = std::stoi(arg_or(args, "workers", "4"));
  cfg.farm.queue_capacity = std::stoul(arg_or(args, "queue", "64"));
  const std::string engine_name = arg_or(args, "engine", "behavioral");
  if (const auto kind = engine::kind_from_name(engine_name)) cfg.farm.engine = *kind;
  else die("unknown engine '" + engine_name + "' (sw|behavioral|netlist)");
  cfg.window = std::stoul(arg_or(args, "window", "32"));
  cfg.idle_timeout = std::chrono::milliseconds(std::stol(arg_or(args, "idle-ms", "30000")));
  cfg.farm.spot_check_fraction = std::stod(arg_or(args, "spot-check", "0"));
  if (cfg.farm.spot_check_fraction < 0 || cfg.farm.spot_check_fraction > 1)
    die("--spot-check must be in [0,1]");
  cfg.admin = arg_or(args, "admin", "yes") != "no";
  // The workers' native key geometry. Sessions with other key lengths are
  // still served (the farm builds matching-geometry sibling engines
  // lazily); --keybits just picks which size pays no sibling setup.
  const int keybits = keybits_of(args, "128");
  if (keybits != 128) {
    arch::VariantSpec vs;  // the paper's iterative core at this key size
    vs.key_bits = keybits;
    cfg.farm.worker_variants = {vs};
  }
  cfg.chaos_seed =
      static_cast<std::uint32_t>(std::stoul(arg_or(args, "chaos-seed", "0x5eed"), nullptr, 0));
  const std::string trace_path = arg_or(args, "trace", "");
  if (!trace_path.empty()) cfg.tracing = true;
  const std::string address = arg_or(args, "listen", "127.0.0.1:0");

  cfg.threads = std::stoi(arg_or(args, "threads", "1"));
  if (cfg.threads < 1) die("--threads must be >= 1");
  // --cluster joins a multi-node shard: this node gossips membership with
  // --seeds and serves only the sessions the consistent-hash ring assigns
  // it, bouncing the rest with kRedirect (docs/cluster.md).
  if (arg_or(args, "cluster", "no") != "no") {
    net::ClusterConfig cc;
    cc.node_id = arg_or(args, "node-id", address);
    cc.advertise = arg_or(args, "advertise", "");
    cc.seeds = split_csv(arg_or(args, "seeds", ""));
    cc.gossip_interval = std::chrono::milliseconds(std::stol(arg_or(args, "gossip-ms", "100")));
    cc.suspect_after = std::chrono::milliseconds(std::stol(arg_or(args, "suspect-ms", "1500")));
    cc.ring_vnodes = std::stoul(arg_or(args, "vnodes", "64"));
    cfg.cluster = cc;
  }

  auto transport = transport_of(args);
  net::Server server(*transport, address, cfg);
  g_serve_instance.store(&server, std::memory_order_release);
  std::signal(SIGINT, serve_signal_handler);
  std::signal(SIGTERM, serve_signal_handler);

  std::printf("aesip serve: aesip-wire-v1 on %s via %s (%d workers, %s engine, AES-%d native, "
              "window %zu, admin %s, spot-check %.0f%%)\n",
              server.address().c_str(), transport->name(), cfg.farm.workers,
              engine::kind_name(cfg.farm.engine), keybits, cfg.window,
              cfg.admin ? "on" : "off", 100.0 * cfg.farm.spot_check_fraction);
  if (cfg.threads > 1)
    std::printf("aesip serve: %d event-loop threads (%s readiness)\n", cfg.threads,
                server.stats().poller.c_str());
  if (cfg.cluster)
    std::printf("aesip serve: cluster node '%s' (%zu seeds, gossip every %lld ms)\n",
                cfg.cluster->node_id.c_str(), cfg.cluster->seeds.size(),
                static_cast<long long>(cfg.cluster->gossip_interval.count()));
  std::printf("aesip serve: SIGINT/SIGTERM drain gracefully\n");
  std::fflush(stdout);
  server.run();
  g_serve_instance.store(nullptr, std::memory_order_release);

  const auto st = server.stats();
  std::printf("aesip serve: drained. %llu connections, %llu frames in, %llu responses, "
              "%llu errors, %.1f MiB in / %.1f MiB out\n",
              static_cast<unsigned long long>(st.connections_accepted),
              static_cast<unsigned long long>(st.frames_received),
              static_cast<unsigned long long>(st.responses_sent),
              static_cast<unsigned long long>(st.errors_sent),
              static_cast<double>(st.bytes_in) / (1024.0 * 1024.0),
              static_cast<double>(st.bytes_out) / (1024.0 * 1024.0));
  std::printf("  request latency us: p50 %llu  p99 %llu  max %llu\n",
              static_cast<unsigned long long>(st.request_latency_us.percentile(0.50)),
              static_cast<unsigned long long>(st.request_latency_us.percentile(0.99)),
              static_cast<unsigned long long>(st.request_latency_us.max));
  for (const auto& t : st.per_thread)
    if (st.per_thread.size() > 1)
      std::printf("  thread %d: %llu conns adopted, %llu frames, %llu responses\n", t.thread,
                  static_cast<unsigned long long>(t.connections_adopted),
                  static_cast<unsigned long long>(t.frames_received),
                  static_cast<unsigned long long>(t.responses_sent));
  if (cfg.cluster)
    std::printf("  cluster: %llu redirects sent, %llu gossip frames, %llu gossip rounds\n",
                static_cast<unsigned long long>(st.redirects_sent),
                static_cast<unsigned long long>(st.gossip_frames),
                static_cast<unsigned long long>(st.gossip_rounds));
  const auto fst = server.farm_stats();
  if (fst.swaps || fst.heals || fst.quarantines || fst.spot_checks)
    std::printf("  fleet: %llu swaps, %llu heals, %llu quarantines, %llu spot-checks "
                "(%llu mismatches, %llu replayed)\n",
                static_cast<unsigned long long>(fst.swaps),
                static_cast<unsigned long long>(fst.heals),
                static_cast<unsigned long long>(fst.quarantines),
                static_cast<unsigned long long>(fst.spot_checks),
                static_cast<unsigned long long>(fst.spot_mismatches),
                static_cast<unsigned long long>(fst.replayed_jobs));
  if (!trace_path.empty()) {
    std::ofstream tf(trace_path);
    if (!tf) die("cannot write " + trace_path);
    server.write_chrome_trace(tf);
    std::printf("  chrome trace written to %s\n", trace_path.c_str());
  }
  return 0;
}

// --- loadgen -----------------------------------------------------------------------

int cmd_loadgen(const Args& args) {
  // --chaos: while the sessions run, a driver thread fires seeded fleet
  // admin operations (SEU injection, hot-swaps, quarantine/resume) at the
  // server. With no --connect, loadgen self-hosts an in-process server
  // built for the scenario: netlist engines (so injection lands in real
  // DFF state), spot-check fraction 1.0 (every job oracle-checked, so a
  // corrupted engine is caught and healed before its bytes escape), and
  // the admin plane on. Exit 0 means zero corrupted and zero lost frames.
  const bool chaos = arg_or(args, "chaos", "no") != "no";
  std::string address = arg_or(args, "connect", "");
  const int n_sessions = std::stoi(arg_or(args, "sessions", chaos ? "2" : "4"));
  const std::uint64_t n_requests = std::stoull(arg_or(args, "requests", chaos ? "24" : "64"));
  const std::size_t max_blocks = std::stoul(arg_or(args, "blocks", chaos ? "4" : "8"));
  const std::uint32_t seed =
      static_cast<std::uint32_t>(std::stoul(arg_or(args, "seed", "1")));
  if (n_sessions < 1 || max_blocks < 1) die("--sessions and --blocks must be >= 1");
  // Default "mix": session s runs AES-128/192/256 round-robin so one run
  // exercises every geometry the server can hold (keys travel on the wire;
  // the farm picks the engine geometry from the key length per job).
  const int keybits = keybits_of(args, "mix", /*allow_mix=*/true);

  auto transport = transport_of(args);

  // --nodes N self-hosts an N-node cluster in-process (gossip-linked,
  // consistent-hash sharded); --nodes A,B,C targets servers already
  // running. Either way each session round-robins its first dial across
  // the nodes and follows kRedirect to the owner — the sharding itself is
  // part of what gets verified.
  std::vector<std::string> node_addrs;
  std::vector<std::unique_ptr<net::Server>> cluster_nodes;
  const std::string nodes_arg = arg_or(args, "nodes", "");
  if (!nodes_arg.empty()) {
    if (nodes_arg.find_first_not_of("0123456789") == std::string::npos) {
      const int n_nodes = std::stoi(nodes_arg);
      if (n_nodes < 1) die("--nodes must be >= 1");
      if (!address.empty()) die("--nodes N self-hosts; drop --connect or pass addresses");
      for (int n = 0; n < n_nodes; ++n) {
        net::ServerConfig scfg;
        scfg.farm.workers = std::stoi(arg_or(args, "workers", "2"));
        const std::string engine_name = arg_or(args, "engine", chaos ? "netlist" : "sw");
        if (const auto kind = engine::kind_from_name(engine_name)) scfg.farm.engine = *kind;
        else die("unknown engine '" + engine_name + "' (sw|behavioral|netlist)");
        scfg.farm.spot_check_fraction = chaos ? 1.0 : 0.0;
        scfg.threads = std::stoi(arg_or(args, "threads", "1"));
        scfg.admin = true;
        scfg.chaos_seed = seed + static_cast<std::uint32_t>(n);
        net::ClusterConfig cc;
        cc.node_id = "n" + std::to_string(n);
        cc.gossip_interval = std::chrono::milliseconds(25);
        cc.seeds = node_addrs;  // each node bootstraps off the ones already up
        scfg.cluster = cc;
        auto srv = std::make_unique<net::Server>(*transport, "127.0.0.1:0", scfg);
        srv->start();
        node_addrs.push_back(srv->address());
        cluster_nodes.push_back(std::move(srv));
      }
      // Traffic before membership converges would redirect to a partial
      // ring; wait until every node sees all N alive.
      const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
      for (const auto& srv : cluster_nodes)
        while (srv->director()->alive_count(std::chrono::steady_clock::now()) <
               static_cast<std::size_t>(n_nodes)) {
          if (std::chrono::steady_clock::now() > deadline)
            die("cluster membership did not converge");
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
      std::printf("loadgen: self-hosted %d-node cluster (%s transport):", n_nodes,
                  transport->name());
      for (const auto& a : node_addrs) std::printf(" %s", a.c_str());
      std::printf("\n");
    } else {
      node_addrs = split_csv(nodes_arg);
    }
  }
  if (address.empty() && !node_addrs.empty()) address = node_addrs.front();
  if (address.empty() && !chaos)
    die("--connect host:port or --nodes is required (an aesip serve address)");

  std::unique_ptr<net::Server> self_hosted;
  if (address.empty()) {
    net::ServerConfig scfg;
    scfg.farm.workers = std::stoi(arg_or(args, "workers", "2"));
    const std::string engine_name = arg_or(args, "engine", "netlist");
    if (const auto kind = engine::kind_from_name(engine_name)) scfg.farm.engine = *kind;
    else die("unknown engine '" + engine_name + "' (sw|behavioral|netlist)");
    scfg.farm.spot_check_fraction = 1.0;
    scfg.admin = true;
    scfg.chaos_seed = seed;
    self_hosted = std::make_unique<net::Server>(*transport, "127.0.0.1:0", scfg);
    self_hosted->start();
    address = self_hosted->address();
    std::printf("loadgen: self-hosted server on %s (%d workers, %s engine, "
                "spot-check 100%%)\n",
                address.c_str(), scfg.farm.workers, engine::kind_name(scfg.farm.engine));
  }
  std::atomic<std::uint64_t> total_requests{0}, total_blocks{0}, mismatches{0};
  std::atomic<std::uint64_t> total_redirects{0};
  std::atomic<int> failures{0};

  // One thread per session: each connects (with the client's retry/backoff,
  // so racing `aesip serve &` works), probes FIPS-197 Appendix B, then keeps
  // the server's window full with random verified traffic.
  const auto session_main = [&](int sid) {
    try {
      const std::string& dial =
          node_addrs.empty() ? address
                             : node_addrs[static_cast<std::size_t>(sid) % node_addrs.size()];
      net::Client client(*transport, dial, static_cast<std::uint64_t>(sid) + 1);
      std::mt19937 rng(seed + static_cast<std::uint32_t>(sid) * 7919);

      farm::Key128 fips_key, zero_iv{};
      std::copy(engine::kFipsBKey.begin(), engine::kFipsBKey.end(), fips_key.begin());
      client.set_key(fips_key);
      const auto probe = client.enc_blocks(
          /*cbc=*/false, zero_iv,
          std::vector<std::uint8_t>(engine::kFipsBPlain.begin(), engine::kFipsBPlain.end()));
      if (!std::equal(probe.begin(), probe.end(), engine::kFipsBCipher.begin())) {
        mismatches.fetch_add(1);
        std::fprintf(stderr, "loadgen: session %d FIPS-197 Appendix B MISMATCH\n", sid);
      }

      const int bits = keybits ? keybits : 128 + 64 * (sid % 3);
      const farm::KeyBytes key = random_keybytes(rng, bits);
      client.rekey(key.view());
      const aes::Rijndael ref = aes::Rijndael::for_key(key.view());

      struct Outstanding {
        std::uint32_t seq;
        std::vector<std::uint8_t> expect;
      };
      std::deque<Outstanding> outstanding;
      const auto collect_one = [&] {
        auto o = std::move(outstanding.front());
        outstanding.pop_front();
        const auto got = client.wait(o.seq);
        if (got != o.expect) mismatches.fetch_add(1);
      };

      for (std::uint64_t r = 0; r < n_requests; ++r) {
        farm::Key128 iv;
        for (auto& b : iv) b = static_cast<std::uint8_t>(rng());
        const std::span<const std::uint8_t, 16> ivs(iv.data(), 16);
        const int mode = static_cast<int>(rng() % 3);
        std::size_t bytes = (1 + rng() % max_blocks) * aes::kBlock;
        if (mode == 2) bytes -= rng() % aes::kBlock;  // CTR takes ragged tails
        std::vector<std::uint8_t> data(bytes);
        for (auto& b : data) b = static_cast<std::uint8_t>(rng());
        total_blocks.fetch_add((bytes + aes::kBlock - 1) / aes::kBlock);

        Outstanding o;
        const bool enc = (rng() & 1) != 0;
        if (mode == 2) {
          o.expect = aes::ctr_crypt(ref, ivs, data);
          o.seq = client.submit_ctr(iv, std::move(data));
        } else if (enc) {
          o.expect = mode ? aes::cbc_encrypt(ref, ivs, data) : aes::ecb_encrypt(ref, data);
          o.seq = client.submit_enc(mode == 1, iv, std::move(data));
        } else {
          o.expect = mode ? aes::cbc_decrypt(ref, ivs, data) : aes::ecb_decrypt(ref, data);
          o.seq = client.submit_dec(mode == 1, iv, std::move(data));
        }
        outstanding.push_back(std::move(o));
        while (outstanding.size() >= client.window()) collect_one();
      }
      while (!outstanding.empty()) collect_one();
      total_requests.fetch_add(n_requests + 1);  // + the FIPS probe

      client.drain();  // the zero-loss barrier: everything above is answered
      client.bye();
      total_redirects.fetch_add(client.redirects());
    } catch (const std::exception& e) {
      failures.fetch_add(1);
      std::fprintf(stderr, "loadgen: session %d failed: %s\n", sid, e.what());
    }
  };

  // The chaos driver: a dedicated admin client firing a seeded, repeating
  // schedule of fleet mutations at the live server until traffic finishes.
  // Every operation blocks for its server ack, so a thrown WireError (e.g.
  // admin disabled) is a scenario failure, not a silent skip.
  std::atomic<bool> traffic_done{false};
  std::uint64_t chaos_events = 0;
  std::atomic<int> chaos_failures{0};
  std::thread chaos_thread;
  if (chaos) {
    chaos_thread = std::thread([&] {
      try {
        // Pinned: the chaos driver targets this node deliberately and must
        // never be bounced to the session's ring owner.
        net::ClientConfig acfg;
        acfg.pinned = true;
        net::Client admin(*transport, address, 0xf1ee7, acfg);
        int step = 0;
        while (!traffic_done.load(std::memory_order_acquire)) {
          switch (step++ % 7) {
            case 0:
            case 1:
            case 3:
              admin.fleet_inject();  // server-chosen worker, auto corrupting site
              break;
            case 2:
              admin.fleet_swap(-1, 1);  // all workers -> behavioral
              break;
            case 4:
              admin.fleet_swap(-1, 2);  // all workers -> netlist
              break;
            case 5:
              admin.fleet_quarantine(0, /*resume=*/false);
              break;
            case 6:
              admin.fleet_quarantine(0, /*resume=*/true);
              break;
          }
          ++chaos_events;
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        admin.bye();
      } catch (const std::exception& e) {
        chaos_failures.fetch_add(1);
        std::fprintf(stderr, "loadgen: chaos driver failed: %s\n", e.what());
      }
    });
  }

  // Sessions run on a bounded pool (--concurrency) so --sessions 10000
  // costs 10000 connections, not 10000 simultaneous threads.
  const int concurrency =
      std::min(n_sessions, std::stoi(arg_or(args, "concurrency", "256")));
  if (concurrency < 1) die("--concurrency must be >= 1");
  std::atomic<int> next_session{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int w = 0; w < concurrency; ++w)
    threads.emplace_back([&] {
      for (int s = next_session.fetch_add(1); s < n_sessions;
           s = next_session.fetch_add(1))
        session_main(s);
    });
  for (auto& t : threads) t.join();
  traffic_done.store(true, std::memory_order_release);
  if (chaos_thread.joinable()) chaos_thread.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  const auto blocks = total_blocks.load();
  std::printf("loadgen: %d sessions (%s-bit keys), %llu requests, %llu blocks in "
              "%.3f s (%.0f blocks/s), seed %u\n",
              n_sessions, keybits ? std::to_string(keybits).c_str() : "mixed 128/192/256",
              static_cast<unsigned long long>(total_requests.load()),
              static_cast<unsigned long long>(blocks), secs,
              secs > 0 ? static_cast<double>(blocks) / secs : 0.0, seed);
  if (chaos)
    std::printf("loadgen: chaos: %llu admin operations (inject/swap/quarantine), "
                "%d driver failures; reproduce with --chaos --seed %u\n",
                static_cast<unsigned long long>(chaos_events), chaos_failures.load(), seed);
  if (!node_addrs.empty())
    std::printf("loadgen: cluster: %llu redirects followed across %zu nodes\n",
                static_cast<unsigned long long>(total_redirects.load()), node_addrs.size());
  if (!cluster_nodes.empty()) {
    for (auto& n : cluster_nodes) n->stop();
    farm::FarmStats merged;
    std::uint64_t redirects_sent = 0, gossip_rounds = 0;
    for (std::size_t i = 0; i < cluster_nodes.size(); ++i) {
      const auto st = cluster_nodes[i]->stats();
      redirects_sent += st.redirects_sent;
      gossip_rounds += st.gossip_rounds;
      if (i == 0) merged = cluster_nodes[i]->farm_stats();
      else merged.merge_from(cluster_nodes[i]->farm_stats());
    }
    std::printf("loadgen: cluster roll-up: %zu nodes, %llu requests, %llu blocks served, "
                "%llu redirects sent, %llu gossip rounds\n",
                cluster_nodes.size(), static_cast<unsigned long long>(merged.requests),
                static_cast<unsigned long long>(merged.blocks),
                static_cast<unsigned long long>(redirects_sent),
                static_cast<unsigned long long>(gossip_rounds));
  }
  if (self_hosted) {
    self_hosted->stop();
    const auto fst = self_hosted->farm_stats();
    std::printf("loadgen: fleet: %llu swaps, %llu heals, %llu spot-checks "
                "(%llu mismatches caught, %llu jobs replayed from the oracle)\n",
                static_cast<unsigned long long>(fst.swaps),
                static_cast<unsigned long long>(fst.heals),
                static_cast<unsigned long long>(fst.spot_checks),
                static_cast<unsigned long long>(fst.spot_mismatches),
                static_cast<unsigned long long>(fst.replayed_jobs));
  }
  // Corrupted frames = verification mismatches; lost frames = sessions that
  // failed to collect every response (collect_one would have thrown).
  const bool ok =
      mismatches.load() == 0 && failures.load() == 0 && chaos_failures.load() == 0;
  std::printf("loadgen: verification vs aes::Rijndael: %s (%llu corrupted frames, "
              "%d lost/failed sessions)\n",
              ok ? "all bit-exact" : "FAILED",
              static_cast<unsigned long long>(mismatches.load()), failures.load());
  return ok ? 0 : 1;
}

// --- fleet -------------------------------------------------------------------------

void fleet_usage() {
  std::puts(
      "usage: aesip fleet <subcommand> --connect HOST:PORT [options]\n"
      "  status [--nodes A,B,C]                  fleet health snapshot (JSON);\n"
      "                                          --nodes polls every cluster node\n"
      "                                          into an aesip-cluster-fleet-v1\n"
      "                                          envelope (rows tagged by node id)\n"
      "  swap   [--worker N|all] --engine KIND [--variant NAME]\n"
      "                                          hot-swap live engine(s);\n"
      "                                          KIND: sw|behavioral|netlist\n"
      "                                          NAME: a round-engine variant —\n"
      "                                          iter|unroll|pipe2|pipe5|pipe10\n"
      "                                          x -xtime|-lut (docs/variants.md);\n"
      "                                          omitted = the paper's core\n"
      "  quarantine --worker N                   pull a worker from routing\n"
      "  resume     --worker N                   put it back\n"
      "  inject [--worker N|random] [--site N|auto]\n"
      "                                          flip a DFF in a live netlist engine\n"
      "Targets an `aesip serve` with the admin plane on (docs/fleet.md).");
}

int cmd_fleet(int argc, char** argv) {
  if (argc < 3) {
    fleet_usage();
    return 1;
  }
  const std::string sub = argv[2];
  const Args args = parse_args(argc, argv, 3);
  auto transport = transport_of(args);

  // Fleet clients are pinned (kFlagPinned): they target the node they
  // dialed, never the session's ring owner.
  net::ClientConfig fcfg;
  fcfg.pinned = true;

  // `fleet status --nodes A,B,C` polls every node of a cluster and wraps
  // the per-node snapshots (each tagged "node": id) in one envelope.
  const std::string nodes = arg_or(args, "nodes", "");
  if (sub == "status" && !nodes.empty()) {
    std::string out = "{\"schema\": \"aesip-cluster-fleet-v1\", \"nodes\": [";
    bool first = true;
    for (const auto& addr : split_csv(nodes)) {
      net::Client c(*transport, addr, 0xf1ee7, fcfg);
      out += first ? "" : ", ";
      first = false;
      out += c.fleet_status_json();
      c.bye();
    }
    out += "]}";
    std::puts(out.c_str());
    return 0;
  }

  const std::string address = arg_or(args, "connect", "");
  if (address.empty()) die("--connect host:port is required (an aesip serve address)");

  net::Client client(*transport, address, 0xf1ee7, fcfg);

  int rc = 0;
  if (sub == "status") {
    std::puts(client.fleet_status_json().c_str());
  } else if (sub == "swap") {
    const std::string worker = arg_or(args, "worker", "all");
    const std::string engine_name = arg_or(args, "engine", "");
    const auto kind = engine::kind_from_name(engine_name);
    if (!kind) die("swap needs --engine sw|behavioral|netlist");
    const std::string variant = arg_or(args, "variant", "");
    if (!variant.empty() && !arch::VariantSpec::parse(variant))
      die("unknown variant '" + variant + "' (see docs/variants.md)");
    const int w = worker == "all" ? -1 : std::stoi(worker);
    std::puts(client.fleet_swap(w, static_cast<std::uint8_t>(*kind), variant).c_str());
  } else if (sub == "quarantine" || sub == "resume") {
    const std::string worker = arg_or(args, "worker", "");
    if (worker.empty()) die(sub + " needs --worker N");
    std::puts(client.fleet_quarantine(std::stoi(worker), sub == "resume").c_str());
  } else if (sub == "inject") {
    const std::string worker = arg_or(args, "worker", "random");
    const std::string site = arg_or(args, "site", "auto");
    const int w = worker == "random" ? -1 : std::stoi(worker);
    const std::uint32_t s =
        site == "auto" ? 0xffffffffu : static_cast<std::uint32_t>(std::stoul(site));
    std::puts(client.fleet_inject(w, s).c_str());
  } else {
    fleet_usage();
    rc = 1;
  }
  client.bye();
  return rc;
}

// --- selftest ----------------------------------------------------------------------

int cmd_selftest() {
  // The engine conformance suite (src/engine/conformance.cpp) through all
  // three CipherEngine kinds: FIPS-197 Appendix B and C.1 vectors, a
  // Monte Carlo encryption chain against the software reference, and the
  // paper's cycle invariants. The netlist engine evaluates the synthesized
  // gate network per cycle, so its chain is shorter.
  int failures = 0;
  engine::ConformanceResult netlist_result;
  constexpr int kNetlistIters = 64;
  for (const auto [kind, iters] : {std::pair{engine::EngineKind::kSoftware, 1000},
                                   std::pair{engine::EngineKind::kBehavioral, 1000},
                                   std::pair{engine::EngineKind::kNetlist, kNetlistIters}}) {
    const auto e = engine::make_engine(kind);
    const auto r = engine::run_conformance(*e, iters);
    std::printf("%-10s : %d checks, %d failed (%d-iteration Monte Carlo chain)\n",
                engine::kind_name(kind), r.checks, r.failures, iters);
    for (const auto& m : r.messages) std::printf("  FAILED: %s\n", m.c_str());
    failures += r.failures;
    if (kind == engine::EngineKind::kNetlist) netlist_result = r;
  }

  // Cycle parity: the behavioral model and the synthesized netlist must
  // agree on the total cycle count for the same operation sequence.
  engine::BehavioralEngine beh;
  const auto beh_result = engine::run_conformance(beh, kNetlistIters);
  const bool parity = beh_result.ok() && netlist_result.ok() &&
                      beh_result.total_cycles == netlist_result.total_cycles;
  std::printf("behavioral/netlist cycle parity: %s (%llu vs %llu cycles)\n",
              parity ? "ok" : "FAILED",
              static_cast<unsigned long long>(beh_result.total_cycles),
              static_cast<unsigned long long>(netlist_result.total_cycles));
  if (!parity) ++failures;

  std::printf("selftest: %s\n", failures ? "FAILED" : "all ok");
  return failures ? 1 : 0;
}

void usage() {
  std::puts(
      "usage: aesip <command> [options]\n"
      "  encrypt|decrypt --key HEX (32/48/64 digits) [--keybits 128|192|256]\n"
      "                  [--mode ecb|cbc|ctr] [--iv HEX32]\n"
      "                  [--engine ttable|sw|behavioral|netlist] [--batch N]\n"
      "                  --in FILE --out FILE   (batch: blocks per engine pass,\n"
      "                  default 0 = the engine's full lane width)\n"
      "  flow     [--variant encrypt|decrypt|both] [--device NAME]\n"
      "  export   [--variant V] [--format verilog|blif] [--sbox rom|logic]\n"
      "           [--mapped yes|no] --out FILE\n"
      "  seu      [--runs N] [--seed S] [--tmr yes|no]\n"
      "  power    [--variant encrypt|both] [--device NAME]\n"
      "  farm     [--workers N] [--engine sw|behavioral|netlist] [--sessions N]\n"
      "           [--blocks N] [--queue N] [--keys N] [--keybits 128|192|256|mix]\n"
      "           [--seed S] [--spot-check F]\n"
      "           [--json FILE] [--trace FILE]\n"
      "  metrics  [--blocks N] [--engine sw|behavioral|netlist] [--farm yes|no]\n"
      "           [--workers N] [--net yes|no] [--net-threads N]\n"
      "           [--json FILE|-] [--trace FILE]  (--net probes an in-process\n"
      "           multi-threaded server for the per-thread/cluster counters)\n"
      "  serve    [--listen HOST:PORT] [--workers N] [--engine sw|behavioral|netlist]\n"
      "           [--threads N] (event-loop threads: epoll/poll readiness)\n"
      "           [--udp] [--mtu N] (aesip-netchan-v1 over UDP instead of TCP)\n"
      "           [--cluster --node-id ID --seeds A,B --advertise ADDR]\n"
      "           [--gossip-ms MS] [--suspect-ms MS] [--vnodes N]\n"
      "           (join a sharded multi-node cluster; docs/cluster.md)\n"
      "           [--window N] [--queue N] [--idle-ms MS] [--trace FILE]\n"
      "           [--spot-check F] [--admin yes|no] [--chaos-seed S]\n"
      "           [--keybits 128|192|256]  (native worker geometry; other key\n"
      "           sizes are served via lazily built sibling engines)\n"
      "           (aesip-wire-v1 server over the IP farm; docs/net.md)\n"
      "  loadgen  [--connect HOST:PORT] [--sessions N] [--requests N] [--blocks N]\n"
      "           [--nodes N|A,B,C] (N self-hosts an N-node sharded cluster;\n"
      "           a list round-robins sessions over running nodes — either\n"
      "           way clients follow kRedirect to each session's owner)\n"
      "           [--udp] [--threads N] [--concurrency N] (session thread pool\n"
      "           cap, default 256 — 10k sessions != 10k threads)\n"
      "           [--keybits 128|192|256|mix] (default mix: sessions rotate key\n"
      "           sizes round-robin, each verified against its matching oracle)\n"
      "           [--seed S] [--chaos]   (verified client traffic against aesip\n"
      "           serve; --chaos fires seeded fleet mutations mid-traffic and\n"
      "           self-hosts a spot-checked server when --connect is omitted)\n"
      "  fleet    status|swap|quarantine|resume|inject --connect HOST:PORT\n"
      "           (live fleet admin: hot-swap engines, quarantine workers,\n"
      "           inject SEUs; `aesip fleet --help` for options; docs/fleet.md)\n"
      "           status --nodes A,B,C polls a whole cluster into one envelope\n"
      "  selftest    (engine conformance: FIPS-197 vectors + cycle parity)\n"
      "  help | --help | -h");
}

/// `aesip <cmd> --help` prints usage and exits 0 for every subcommand —
/// parse_args would otherwise reject the valueless flag.
bool wants_help(int argc, char** argv) {
  for (int i = 2; i < argc; ++i)
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) return true;
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string cmd = argv[1];
  if (cmd == "fleet" && wants_help(argc, argv)) {
    fleet_usage();
    return 0;
  }
  if (cmd == "help" || cmd == "--help" || cmd == "-h" || wants_help(argc, argv)) {
    usage();
    return 0;
  }
  try {
    if (cmd == "encrypt") return cmd_crypt(true, parse_args(argc, argv, 2));
    if (cmd == "decrypt") return cmd_crypt(false, parse_args(argc, argv, 2));
    if (cmd == "flow") return cmd_flow(parse_args(argc, argv, 2));
    if (cmd == "export") return cmd_export(parse_args(argc, argv, 2));
    if (cmd == "seu") return cmd_seu(parse_args(argc, argv, 2));
    if (cmd == "power") return cmd_power(parse_args(argc, argv, 2));
    if (cmd == "farm") return cmd_farm(parse_args(argc, argv, 2));
    if (cmd == "metrics") return cmd_metrics(parse_args(argc, argv, 2));
    if (cmd == "serve") return cmd_serve(parse_args(argc, argv, 2));
    if (cmd == "loadgen") return cmd_loadgen(parse_args(argc, argv, 2));
    if (cmd == "fleet") return cmd_fleet(argc, argv);
    if (cmd == "selftest") return cmd_selftest();
  } catch (const std::exception& e) {
    die(e.what());
  }
  usage();
  return 1;
}
