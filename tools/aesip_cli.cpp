// aesip — command-line front end for the library.
//
// Subcommands:
//   encrypt / decrypt   AES-128 file encryption (ECB/CBC/CTR + PKCS#7),
//                       with a choice of engine: the software reference,
//                       the T-table engine, or the cycle-accurate
//                       simulated IP over its bus protocol.
//   flow                run synthesize -> map -> fit -> timing for a
//                       variant/device and print the implementation report.
//   export              write the synthesized IP as structural Verilog or
//                       BLIF for external tools.
//   seu                 run a fault-injection campaign (optionally on the
//                       TMR-hardened netlist).
//   power               activity-based power report for a variant/device.
//   farm                drive a synthetic many-session workload through the
//                       multi-core IP farm (src/farm/) and print its stats
//                       report; results are verified against the software
//                       reference on a sample of the traffic.
//   metrics             run an instrumented workload and report the
//                       observability counters: per-FSM-phase cycles (the
//                       live 4+1 / 50-cycle invariants), bus-side cycle
//                       accounting, simulator profile, and optionally the
//                       farm's histograms — as a text table and/or JSON
//                       (schema: docs/benchmarks.md). Exits non-zero if a
//                       paper invariant does not hold.
//   selftest            FIPS-197 vectors through software and the IP.
//
// Examples:
//   aesip encrypt --key 000102030405060708090a0b0c0d0e0f --mode cbc
//         --iv aabb...ff --engine ip --in msg.txt --out msg.enc
//   aesip flow --variant both --device EP1K100FC484-1
//   aesip export --variant encrypt --format blif --out aes.blif
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "aes/cipher.hpp"
#include "aes/modes.hpp"
#include "aes/ttable.hpp"
#include "core/bfm.hpp"
#include "farm/farm.hpp"
#include "obs/profiler.hpp"
#include "report/json.hpp"
#include "core/ip_synth.hpp"
#include "core/rijndael_ip.hpp"
#include "core/table2.hpp"
#include "fpga/device.hpp"
#include "fpga/fitter.hpp"
#include "hdl/simulator.hpp"
#include "netlist/writer.hpp"
#include "power/power.hpp"
#include "report/table.hpp"
#include "seu/campaign.hpp"
#include "seu/tmr.hpp"
#include "techmap/techmap.hpp"

using namespace aesip;

namespace {

[[noreturn]] void die(const std::string& msg) {
  std::fprintf(stderr, "aesip: %s\n", msg.c_str());
  std::exit(1);
}

std::vector<std::uint8_t> from_hex(const std::string& hex) {
  if (hex.size() % 2) die("hex string has odd length");
  std::vector<std::uint8_t> out;
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
    const auto byte = std::stoi(hex.substr(i, 2), nullptr, 16);
    out.push_back(static_cast<std::uint8_t>(byte));
  }
  return out;
}

using Args = std::map<std::string, std::string>;

Args parse_args(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) die("expected --option, got '" + key + "'");
    key = key.substr(2);
    if (i + 1 >= argc) die("missing value for --" + key);
    args[key] = argv[++i];
  }
  return args;
}

std::string arg_or(const Args& a, const std::string& key, const std::string& fallback) {
  const auto it = a.find(key);
  return it == a.end() ? fallback : it->second;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) die("cannot read " + path);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(f),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, std::span<const std::uint8_t> data) {
  std::ofstream f(path, std::ios::binary);
  if (!f) die("cannot write " + path);
  f.write(reinterpret_cast<const char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
}

core::IpMode variant_of(const std::string& name) {
  if (name == "encrypt") return core::IpMode::kEncrypt;
  if (name == "decrypt") return core::IpMode::kDecrypt;
  if (name == "both") return core::IpMode::kBoth;
  die("unknown variant '" + name + "' (encrypt|decrypt|both)");
}

const char* variant_name(core::IpMode m) {
  return m == core::IpMode::kEncrypt ? "encrypt" : m == core::IpMode::kDecrypt ? "decrypt" : "both";
}

// --- crypt -----------------------------------------------------------------------

int cmd_crypt(bool encrypting, const Args& args) {
  const auto key = from_hex(arg_or(args, "key", ""));
  if (key.size() != 16) die("--key must be 32 hex digits (AES-128)");
  const std::string mode = arg_or(args, "mode", "cbc");
  const std::string engine = arg_or(args, "engine", "ttable");
  const std::string in_path = arg_or(args, "in", "");
  const std::string out_path = arg_or(args, "out", "");
  if (in_path.empty() || out_path.empty()) die("--in and --out are required");
  std::vector<std::uint8_t> iv_vec = from_hex(arg_or(args, "iv", std::string(32, '0')));
  if (iv_vec.size() != 16) die("--iv must be 32 hex digits");
  const std::span<const std::uint8_t, 16> iv(iv_vec.data(), 16);

  const auto input = read_file(in_path);

  // Engine setup; the IP engine carries its own simulator.
  hdl::Simulator sim;
  std::optional<core::RijndaelIp> ip;
  std::optional<core::BusDriver> bus;
  std::optional<core::IpBlockCipher> hw;
  if (engine == "ip") {
    ip.emplace(sim, core::IpMode::kBoth);
    bus.emplace(sim, *ip);
    bus->reset();
    bus->load_key(key);
    hw.emplace(*bus);
  }
  aes::Aes128 soft(key);
  aes::TTableAes128 fast(key);

  auto run = [&](auto&& cipher) -> std::vector<std::uint8_t> {
    if (mode == "ecb") {
      return encrypting ? aes::ecb_encrypt(cipher, aes::pkcs7_pad(input))
                        : aes::pkcs7_unpad(aes::ecb_decrypt(cipher, input));
    }
    if (mode == "cbc") {
      return encrypting ? aes::cbc_encrypt(cipher, iv, aes::pkcs7_pad(input))
                        : aes::pkcs7_unpad(aes::cbc_decrypt(cipher, iv, input));
    }
    if (mode == "ctr") return aes::ctr_crypt(cipher, iv, input);
    die("unknown mode '" + mode + "' (ecb|cbc|ctr)");
  };

  std::vector<std::uint8_t> output;
  if (engine == "ip") output = run(*hw);
  else if (engine == "soft") output = run(soft);
  else if (engine == "ttable") output = run(fast);
  else die("unknown engine '" + engine + "' (soft|ttable|ip)");

  write_file(out_path, output);
  std::printf("%s %zu bytes -> %zu bytes (%s, %s engine%s)\n",
              encrypting ? "encrypted" : "decrypted", input.size(), output.size(),
              mode.c_str(), engine.c_str(),
              engine == "ip"
                  ? (", " + std::to_string(sim.cycle()) + " simulated cycles").c_str()
                  : "");
  return 0;
}

// --- flow ------------------------------------------------------------------------

int cmd_flow(const Args& args) {
  const auto mode = variant_of(arg_or(args, "variant", "encrypt"));
  const std::string device_name = arg_or(args, "device", "EP1K100FC484-1");
  const fpga::Device* device = fpga::find_device(device_name);
  if (!device) die("unknown device '" + device_name + "'");
  const auto row = core::reproduce_table2_cell(mode, *device);
  std::printf("variant:        %s\ndevice:         %s\n", variant_name(mode),
              device->name.c_str());
  std::printf("logic cells:    %zu (%.1f%%)   [paper: %d / %d%%]\n", row.fit.logic_elements,
              row.fit.le_pct, row.paper.lcs, row.paper.lc_pct);
  std::printf("memory bits:    %zu (%.1f%%)   [paper: %d / %d%%]\n", row.fit.memory_bits,
              row.fit.memory_pct, row.paper.memory_bits, row.paper.memory_pct);
  std::printf("pins:           %d (%.1f%%)    [paper: %d]\n", row.fit.pins, row.fit.pin_pct,
              row.paper.pins);
  std::printf("clock period:   %.2f ns       [paper: %.0f ns]\n",
              row.fit.timing.clock_period_ns, row.paper.clock_ns);
  std::printf("latency:        %.0f ns (50 cycles)  [paper: %.0f ns]\n", row.latency_ns,
              row.paper.latency_ns);
  std::printf("throughput:     %.1f Mbps     [paper: %.0f Mbps]\n", row.throughput_mbps,
              row.paper.throughput_mbps);
  std::printf("fits:           %s\n", row.fit.fits ? "yes" : "NO");
  return 0;
}

// --- export -----------------------------------------------------------------------

int cmd_export(const Args& args) {
  const auto mode = variant_of(arg_or(args, "variant", "encrypt"));
  const std::string format = arg_or(args, "format", "verilog");
  const std::string out_path = arg_or(args, "out", "");
  const bool rom = arg_or(args, "sbox", "rom") == "rom";
  const bool mapped = arg_or(args, "mapped", "no") == "yes";
  if (out_path.empty()) die("--out is required");

  netlist::Netlist nl = core::synthesize_ip(mode, rom);
  if (mapped) nl = techmap::map_to_luts(nl).mapped;

  std::ofstream f(out_path);
  if (!f) die("cannot write " + out_path);
  const std::string name = std::string("aes_ip_") + variant_name(mode);
  if (format == "verilog") netlist::write_verilog(nl, f, name);
  else if (format == "blif") netlist::write_blif(nl, f, name);
  else die("unknown format '" + format + "' (verilog|blif)");
  const auto st = nl.stats();
  std::printf("wrote %s: %s %s, %zu gates, %zu LUTs, %zu FFs, %zu ROMs\n", out_path.c_str(),
              mapped ? "mapped" : "unmapped", format.c_str(), st.gates, st.luts, st.dffs,
              st.roms);
  return 0;
}

// --- seu --------------------------------------------------------------------------

int cmd_seu(const Args& args) {
  const int runs = std::stoi(arg_or(args, "runs", "100"));
  const std::uint32_t seed = static_cast<std::uint32_t>(std::stoul(arg_or(args, "seed", "1")));
  const bool tmr = arg_or(args, "tmr", "no") == "yes";
  auto mapped = techmap::map_to_luts(core::synthesize_ip(core::IpMode::kEncrypt, true)).mapped;
  if (tmr) mapped = seu::harden_tmr(mapped).hardened;
  const auto stats = seu::run_campaign(mapped, runs, seed);
  std::printf("%d injections into the %s encrypt IP:\n", runs, tmr ? "TMR-hardened" : "unprotected");
  std::printf("  masked:     %zu\n  corrupted:  %zu\n  latent:     %zu\n"
              "  persistent: %zu\n  hang:       %zu\n",
              stats.masked, stats.corrupted, stats.latent, stats.persistent, stats.hang);
  return 0;
}

// --- power ------------------------------------------------------------------------

int cmd_power(const Args& args) {
  const auto mode = variant_of(arg_or(args, "variant", "encrypt"));
  if (mode == core::IpMode::kDecrypt) die("power profiling drives an encrypt workload");
  const std::string device_name = arg_or(args, "device", "EP1K100FC484-1");
  const fpga::Device* device = fpga::find_device(device_name);
  if (!device) die("unknown device '" + device_name + "'");
  const auto row = core::reproduce_table2_cell(mode, *device);
  const auto mapped = techmap::map_to_luts(core::synthesize_ip(mode, device->supports_async_rom));
  const double mhz = 1000.0 / row.fit.timing.clock_period_ns;
  const auto p = power::profile_ip(mapped.mapped, power::params_for(*device), mhz);
  std::printf("variant %s on %s at %.1f MHz:\n", variant_name(mode), device->name.c_str(), mhz);
  std::printf("  logic    %6.2f mW\n  routing  %6.2f mW\n  clock    %6.2f mW\n"
              "  memory   %6.2f mW\n  I/O      %6.2f mW\n  static   %6.2f mW\n"
              "  total    %6.2f mW\n",
              p.logic_mw, p.routing_mw, p.clock_mw, p.memory_mw, p.io_mw, p.static_mw,
              p.total_mw);
  std::printf("  energy: %.2f nJ/block, %.1f pJ/bit\n", p.energy_per_block_nj,
              p.energy_per_bit_pj);
  return 0;
}

// --- farm -------------------------------------------------------------------------

int cmd_farm(const Args& args) {
  farm::FarmConfig cfg;
  cfg.workers = std::stoi(arg_or(args, "workers", "4"));
  cfg.max_sessions = std::stoul(arg_or(args, "sessions", "64"));
  cfg.queue_capacity = std::stoul(arg_or(args, "queue", "64"));
  const std::uint64_t target_blocks = std::stoull(arg_or(args, "blocks", "20000"));
  const std::uint32_t seed =
      static_cast<std::uint32_t>(std::stoul(arg_or(args, "seed", "1")));
  const std::string json_path = arg_or(args, "json", "");
  const std::string trace_path = arg_or(args, "trace", "");
  const int n_keys = std::stoi(arg_or(args, "keys", "32"));  // distinct user keys
  if (!trace_path.empty()) cfg.tracing = true;

  farm::Farm f(cfg);
  std::mt19937 rng(seed);
  std::vector<farm::Key128> keys(static_cast<std::size_t>(n_keys));
  for (auto& k : keys)
    for (auto& b : k) b = static_cast<std::uint8_t>(rng());

  std::printf("farm: %d workers, %zu queue slots each, %d session keys, "
              "target %llu blocks\n",
              cfg.workers, cfg.queue_capacity, n_keys,
              static_cast<unsigned long long>(target_blocks));

  // Outstanding futures are bounded so a huge --blocks run doesn't hold
  // every result in memory; sampled requests are checked bit-exactly.
  struct Pending {
    std::future<farm::Result> future;
    std::vector<std::uint8_t> expect;  // empty = unsampled
  };
  std::deque<Pending> pending;
  std::uint64_t submitted_blocks = 0, requests = 0, verified = 0, mismatches = 0;

  const auto drain_one = [&] {
    auto p = std::move(pending.front());
    pending.pop_front();
    const auto res = p.future.get();
    if (!p.expect.empty()) {
      ++verified;
      if (res.data != p.expect) ++mismatches;
    }
  };

  while (submitted_blocks < target_blocks) {
    farm::Request req;
    // Popularity skew: min of two uniform picks favours low session ids,
    // so hot sessions re-hit their key slots while the tail churns them.
    const auto pick = std::min(rng() % keys.size(), rng() % keys.size());
    req.session_id = pick;
    req.key = keys[pick];
    for (auto& b : req.iv) b = static_cast<std::uint8_t>(rng());
    req.mode = static_cast<farm::Mode>(rng() % 3);
    req.encrypt = (rng() & 1) != 0;
    // Mostly short requests; every 16th is a long CTR stream that fans out.
    std::size_t blocks = 1 + rng() % 8;
    if (requests % 16 == 0) {
      req.mode = farm::Mode::kCtr;
      blocks = 128;
    }
    std::size_t bytes = blocks * 16;
    if (req.mode == farm::Mode::kCtr) bytes -= rng() % 16;  // ragged tails
    req.payload.resize(bytes);
    for (auto& b : req.payload) b = static_cast<std::uint8_t>(rng());

    Pending p;
    if (requests % 64 == 0) {  // sample for bit-exact verification
      const aes::Aes128 ref(req.key);
      const std::span<const std::uint8_t, 16> iv(req.iv.data(), 16);
      switch (req.mode) {
        case farm::Mode::kEcb:
          p.expect = req.encrypt ? aes::ecb_encrypt(ref, req.payload)
                                 : aes::ecb_decrypt(ref, req.payload);
          break;
        case farm::Mode::kCbc:
          p.expect = req.encrypt ? aes::cbc_encrypt(ref, iv, req.payload)
                                 : aes::cbc_decrypt(ref, iv, req.payload);
          break;
        case farm::Mode::kCtr:
          p.expect = aes::ctr_crypt(ref, iv, req.payload);
          break;
      }
    }
    submitted_blocks += (bytes + 15) / 16;
    ++requests;
    p.future = f.submit(std::move(req));
    pending.push_back(std::move(p));
    while (pending.size() > 512) drain_one();
  }
  while (!pending.empty()) drain_one();

  const auto st = f.stats();
  std::fputs(st.report(cfg.clock_ns).c_str(), stdout);
  std::printf("verified %llu sampled requests against aes::Aes128: %s\n",
              static_cast<unsigned long long>(verified),
              mismatches ? "MISMATCH" : "all bit-exact");
  if (!json_path.empty()) {
    std::ofstream jf(json_path);
    if (!jf) die("cannot write " + json_path);
    st.write_json(jf, cfg.clock_ns);
    std::printf("stats written to %s\n", json_path.c_str());
  }
  if (!trace_path.empty()) {
    std::ofstream tf(trace_path);
    if (!tf) die("cannot write " + trace_path);
    f.write_chrome_trace(tf);
    std::printf("chrome trace written to %s (load at chrome://tracing)\n",
                trace_path.c_str());
  }
  return mismatches ? 1 : 0;
}

// --- metrics -----------------------------------------------------------------------

// Shared by the farm summary in cmd_metrics: percentile figures straight
// off a histogram snapshot.
void json_histogram_summary(report::JsonWriter& j, const obs::HistogramSnapshot& h) {
  j.begin_object();
  j.key("count").value(h.count);
  j.key("mean").value(h.mean());
  j.key("p50").value(h.percentile(0.50));
  j.key("p90").value(h.percentile(0.90));
  j.key("p99").value(h.percentile(0.99));
  j.key("max").value(h.max);
  j.end_object();
}

int cmd_metrics(const Args& args) {
  const std::uint64_t n_blocks = std::stoull(arg_or(args, "blocks", "32"));
  if (n_blocks == 0) die("--blocks must be >= 1");
  const std::string json_path = arg_or(args, "json", "");
  const std::string trace_path = arg_or(args, "trace", "");
  const bool with_farm = arg_or(args, "farm", "yes") == "yes";
  const bool json_to_stdout = json_path == "-";
  const bool text = !json_to_stdout;

  // --- instrumented single-core workload: n_blocks encrypted, the same
  // n_blocks decrypted back, through a kBoth device with the simulator
  // profiler attached and the IP/bus counters running.
  hdl::Simulator sim;
  core::RijndaelIp ip(sim, core::IpMode::kBoth);
  core::BusDriver bus(sim, ip);
  obs::ScopedProfiler prof(sim);

  std::mt19937 rng(0xae5);
  std::vector<std::uint8_t> key(16);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng());
  bus.reset();
  bus.load_key(key);

  std::array<std::uint8_t, 16> block{};
  for (std::uint64_t i = 0; i < n_blocks; ++i) {
    for (auto& b : block) b = static_cast<std::uint8_t>(rng());
    const auto ct = bus.process_block(block, true);
    const auto pt = bus.process_block(ct, false);
    if (!std::equal(pt.begin(), pt.end(), block.begin()))
      die("metrics: IP round-trip mismatch");
  }

  const core::IpCounters ipc = ip.counters();
  const core::BusCounters bc = bus.counters();

  // --- the paper's cycle budget, checked live off the counters ---------------
  bool ok = true;
  const auto check = [&ok](bool cond, const char* what) {
    if (!cond) {
      ok = false;
      std::fprintf(stderr, "metrics: INVARIANT VIOLATED: %s\n", what);
    }
  };
  check(ipc.blocks_enc == n_blocks && ipc.blocks_dec == n_blocks,
        "block counters match the workload");
  check(ipc.rounds_done == ipc.blocks() * core::RijndaelIp::kRounds,
        "10 rounds per block");
  check(ipc.bytesub_cycles == 4 * ipc.rounds_done, "4 ByteSub32 cycles per round");
  check(ipc.mix_cycles == ipc.rounds_done, "1 SR/MC/AK cycle per round");
  check(ipc.round_cycles() ==
            ipc.rounds_done * core::RijndaelIp::kCyclesPerRound,
        "5 cycles per round");
  check(ipc.round_cycles() == ipc.blocks() * core::RijndaelIp::kCyclesPerBlock,
        "50 cycles per block");
  check(ipc.key_setup_cycles ==
            bc.key_loads * core::RijndaelIp::kKeySetupCycles,
        "40-cycle decrypt key setup per key load");
  check(bus.last_latency() == core::RijndaelIp::kCyclesPerBlock,
        "last block latency == 50");
  const std::uint64_t cpr = ipc.rounds_done ? ipc.round_cycles() / ipc.rounds_done : 0;
  const std::uint64_t cpb = ipc.blocks() ? ipc.round_cycles() / ipc.blocks() : 0;

  if (text) {
    std::printf("workload: %llu blocks encrypted + %llu decrypted (kBoth device)\n\n",
                static_cast<unsigned long long>(n_blocks),
                static_cast<unsigned long long>(n_blocks));
    std::printf("ip phase cycles (Rijndael process):\n");
    std::printf("  idle         %10llu\n",
                static_cast<unsigned long long>(ipc.idle_cycles));
    std::printf("  key setup    %10llu   (%llu loads x 40)\n",
                static_cast<unsigned long long>(ipc.key_setup_cycles),
                static_cast<unsigned long long>(bc.key_loads));
    std::printf("  bytesub32    %10llu   (4 per round)\n",
                static_cast<unsigned long long>(ipc.bytesub_cycles));
    std::printf("  sr/mc/ak     %10llu   (1 per round)\n",
                static_cast<unsigned long long>(ipc.mix_cycles));
    std::printf("  rounds done  %10llu   -> %llu cycles/round   [paper: 5]\n",
                static_cast<unsigned long long>(ipc.rounds_done),
                static_cast<unsigned long long>(cpr));
    std::printf("  blocks       %10llu   -> %llu cycles/block  [paper: 50]\n\n",
                static_cast<unsigned long long>(ipc.blocks()),
                static_cast<unsigned long long>(cpb));
    std::printf("bus driver:\n");
    std::printf("  resets %llu, key loads %llu (setup %llu cy), rekey hits %llu\n",
                static_cast<unsigned long long>(bc.resets),
                static_cast<unsigned long long>(bc.key_loads),
                static_cast<unsigned long long>(bc.key_setup_cycles),
                static_cast<unsigned long long>(bc.rekey_hits));
    std::printf("  blocks %llu: %llu load edges + %llu compute cycles\n\n",
                static_cast<unsigned long long>(bc.blocks),
                static_cast<unsigned long long>(bc.load_cycles),
                static_cast<unsigned long long>(bc.compute_cycles));
    std::fputs(prof.report().c_str(), stdout);
  }

  // --- optional farm section: a small traced workload ------------------------
  std::optional<farm::FarmStats> fst;
  farm::FarmConfig fcfg;
  if (with_farm) {
    fcfg.workers = std::stoi(arg_or(args, "workers", "4"));
    fcfg.tracing = true;
    farm::Farm f(fcfg);
    std::vector<std::future<farm::Result>> futs;
    std::vector<farm::Key128> keys(8);
    for (auto& k : keys)
      for (auto& b : k) b = static_cast<std::uint8_t>(rng());
    // Sessions arrive in bursts (32 consecutive requests each) so the
    // affinity router has hits to find.
    for (int i = 0; i < 256; ++i) {
      farm::Request req;
      req.session_id = static_cast<std::uint64_t>(i) / 32 % keys.size();
      req.key = keys[req.session_id];
      for (auto& b : req.iv) b = static_cast<std::uint8_t>(rng());
      req.mode = static_cast<farm::Mode>(i % 3);
      req.encrypt = (i & 1) != 0;
      req.payload.resize(16 * (1 + i % 4));
      for (auto& b : req.payload) b = static_cast<std::uint8_t>(rng());
      futs.push_back(f.submit(std::move(req)));
    }
    for (auto& fu : futs) fu.get();
    fst = f.stats();
    if (text) {
      std::printf("\nfarm (%d workers, tracing on, 256 requests):\n", fcfg.workers);
      std::printf("  queue wait us: p50 %llu  p99 %llu  max %llu\n",
                  static_cast<unsigned long long>(fst->queue_wait_us.percentile(0.50)),
                  static_cast<unsigned long long>(fst->queue_wait_us.percentile(0.99)),
                  static_cast<unsigned long long>(fst->queue_wait_us.max));
      std::printf("  key hit rate: %.1f%%   trace events: %llu (%llu dropped)\n",
                  100.0 * fst->key_hit_rate(),
                  static_cast<unsigned long long>(fst->trace_events),
                  static_cast<unsigned long long>(fst->trace_dropped));
      for (std::size_t w = 0; w < fst->per_worker.size(); ++w)
        std::printf("  worker %zu: %llu requests, %.1f%% utilized\n", w,
                    static_cast<unsigned long long>(fst->per_worker[w].requests),
                    100.0 * fst->per_worker[w].utilization);
    }
    if (!trace_path.empty()) {
      std::ofstream tf(trace_path);
      if (!tf) die("cannot write " + trace_path);
      f.write_chrome_trace(tf);
      if (text) std::printf("  chrome trace written to %s\n", trace_path.c_str());
    }
  } else if (!trace_path.empty()) {
    die("--trace requires --farm yes");
  }

  // --- JSON (schema: docs/benchmarks.md) -------------------------------------
  if (!json_path.empty()) {
    std::ofstream jfile;
    if (!json_to_stdout) {
      jfile.open(json_path);
      if (!jfile) die("cannot write " + json_path);
    }
    std::ostream& os = json_to_stdout ? std::cout : jfile;
    report::JsonWriter j(os);
    j.begin_object();
    j.key("schema").value("aesip-metrics-v1");
    j.key("blocks_per_direction").value(n_blocks);
    j.key("invariants_ok").value(ok);

    j.key("ip").begin_object();
    j.key("phase_cycles").begin_object();
    j.key("idle").value(ipc.idle_cycles);
    j.key("key_setup").value(ipc.key_setup_cycles);
    j.key("bytesub").value(ipc.bytesub_cycles);
    j.key("mix").value(ipc.mix_cycles);
    j.end_object();
    j.key("setup_resets").value(ipc.setup_resets);
    j.key("key_writes").value(ipc.key_writes);
    j.key("data_writes").value(ipc.data_writes);
    j.key("rounds_done").value(ipc.rounds_done);
    j.key("blocks_enc").value(ipc.blocks_enc);
    j.key("blocks_dec").value(ipc.blocks_dec);
    j.key("cycles_per_round").value(cpr);
    j.key("cycles_per_block").value(cpb);
    j.key("key_setup_cycles_per_load")
        .value(bc.key_loads ? ipc.key_setup_cycles / bc.key_loads : 0);
    j.end_object();

    j.key("bus").begin_object();
    j.key("resets").value(bc.resets);
    j.key("key_loads").value(bc.key_loads);
    j.key("key_setup_cycles").value(bc.key_setup_cycles);
    j.key("rekey_hits").value(bc.rekey_hits);
    j.key("blocks").value(bc.blocks);
    j.key("load_cycles").value(bc.load_cycles);
    j.key("compute_cycles").value(bc.compute_cycles);
    j.end_object();

    j.key("simulator").begin_object();
    prof.write_json_fields(j);
    j.end_object();

    if (fst) {
      j.key("farm").begin_object();
      j.key("workers").value(fst->workers);
      j.key("requests").value(fst->requests);
      j.key("blocks").value(fst->blocks);
      j.key("key_hit_rate").value(fst->key_hit_rate());
      j.key("queue_depth");
      json_histogram_summary(j, fst->queue_depth);
      j.key("queue_wait_us");
      json_histogram_summary(j, fst->queue_wait_us);
      j.key("trace_events").value(fst->trace_events);
      j.key("trace_dropped").value(fst->trace_dropped);
      j.key("utilization").begin_array();
      for (const auto& w : fst->per_worker) j.value(w.utilization);
      j.end_array();
      j.end_object();
    }
    j.end_object();
    if (text && !json_to_stdout)
      std::printf("\nmetrics written to %s\n", json_path.c_str());
  }
  return ok ? 0 : 1;
}

// --- selftest ----------------------------------------------------------------------

int cmd_selftest() {
  const auto key = from_hex("000102030405060708090a0b0c0d0e0f");
  const auto pt = from_hex("00112233445566778899aabbccddeeff");
  const auto expect = from_hex("69c4e0d86a7b0430d8cdb78070b4c55a");

  aes::Aes128 soft(key);
  std::vector<std::uint8_t> ct(16);
  soft.encrypt_block(pt, ct);
  const bool soft_ok = ct == expect;

  hdl::Simulator sim;
  core::RijndaelIp ip(sim, core::IpMode::kBoth);
  core::BusDriver bus(sim, ip);
  bus.reset();
  bus.load_key(key);
  const auto hw_ct = bus.process_block(pt, true);
  const bool hw_ok = std::equal(hw_ct.begin(), hw_ct.end(), expect.begin());
  const auto hw_pt = bus.process_block(hw_ct, false);
  const bool rt_ok = std::equal(hw_pt.begin(), hw_pt.end(), pt.begin());

  std::printf("software FIPS-197 C.1: %s\n", soft_ok ? "ok" : "FAILED");
  std::printf("simulated IP encrypt:  %s (50-cycle latency: %s)\n", hw_ok ? "ok" : "FAILED",
              bus.last_latency() == 50 ? "ok" : "FAILED");
  std::printf("simulated IP decrypt:  %s\n", rt_ok ? "ok" : "FAILED");
  return (soft_ok && hw_ok && rt_ok) ? 0 : 1;
}

void usage() {
  std::puts(
      "usage: aesip <command> [options]\n"
      "  encrypt|decrypt --key HEX32 [--mode ecb|cbc|ctr] [--iv HEX32]\n"
      "                  [--engine soft|ttable|ip] --in FILE --out FILE\n"
      "  flow     [--variant encrypt|decrypt|both] [--device NAME]\n"
      "  export   [--variant V] [--format verilog|blif] [--sbox rom|logic]\n"
      "           [--mapped yes|no] --out FILE\n"
      "  seu      [--runs N] [--seed S] [--tmr yes|no]\n"
      "  power    [--variant encrypt|both] [--device NAME]\n"
      "  farm     [--workers N] [--sessions N] [--blocks N] [--queue N]\n"
      "           [--keys N] [--seed S] [--json FILE] [--trace FILE]\n"
      "  metrics  [--blocks N] [--farm yes|no] [--workers N]\n"
      "           [--json FILE|-] [--trace FILE]\n"
      "  selftest\n"
      "  help | --help | -h");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string cmd = argv[1];
  if (cmd == "help" || cmd == "--help" || cmd == "-h") {
    usage();
    return 0;
  }
  try {
    if (cmd == "encrypt") return cmd_crypt(true, parse_args(argc, argv, 2));
    if (cmd == "decrypt") return cmd_crypt(false, parse_args(argc, argv, 2));
    if (cmd == "flow") return cmd_flow(parse_args(argc, argv, 2));
    if (cmd == "export") return cmd_export(parse_args(argc, argv, 2));
    if (cmd == "seu") return cmd_seu(parse_args(argc, argv, 2));
    if (cmd == "power") return cmd_power(parse_args(argc, argv, 2));
    if (cmd == "farm") return cmd_farm(parse_args(argc, argv, 2));
    if (cmd == "metrics") return cmd_metrics(parse_args(argc, argv, 2));
    if (cmd == "selftest") return cmd_selftest();
  } catch (const std::exception& e) {
    die(e.what());
  }
  usage();
  return 1;
}
